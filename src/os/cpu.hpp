// CPU cost model and per-core execution context.
//
// Every CPU-side cost in the system (posting a WQE, crossing into the
// kernel, copying a buffer, spinning on a CQ) is charged through a Core,
// which also runs the DVFS/Turbo model: sustained busy-polling raises the
// core's power draw and pushes the sustained frequency towards base,
// while kernel time and genuine compute let Turbo engage. This is the
// mechanism behind the paper's observation that "system calls interact
// with DVFS" (CoRD slightly outperforming bypass on large-message
// bandwidth with Turbo Boost enabled).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace cord::os {

struct CpuModel {
  double base_ghz = 3.3;
  double turbo_ghz = 3.7;
  bool turbo_enabled = false;

  /// Single-threaded copy bandwidth. Calibrated from the paper: an extra
  /// copy costs "up to 140 us/MiB", i.e. ~7.5 GB/s.
  sim::Bandwidth memcpy_bandwidth = sim::Bandwidth::gbyte_per_sec(7.5);

  /// User->kernel->user crossing (no KPTI, bare metal).
  sim::Time syscall_crossing = sim::ns(180);
  /// KPTI multiplies the crossing cost (CR3 switch + TLB effects).
  bool kpti = false;
  double kpti_multiplier = 3.0;
  /// Extra multiplicative cost for virtualized syscalls (system A).
  double virt_overhead = 0.0;
  /// Relative jitter (stddev / mean) on syscall cost; nonzero on system A.
  double syscall_jitter = 0.0;

  /// Kernel IRQ entry + handler on interrupt-driven completion.
  sim::Time interrupt_handling = sim::ns(1500);
  /// Waking a sleeping thread (scheduler + context switch).
  sim::Time wakeup_latency = sim::ns(2500);
  /// Reading a (cached) completion-queue slot on a poll miss.
  sim::Time poll_miss = sim::ns(25);
  /// Harvesting one CQE on a poll hit.
  sim::Time poll_hit = sim::ns(40);
  /// Building a WQE in the send path.
  sim::Time wqe_build = sim::ns(45);
  /// MMIO doorbell write (CPU side; the write is posted).
  sim::Time doorbell_mmio = sim::ns(70);
};

/// What a slice of CPU time was spent on — drives the DVFS model and the
/// per-core time accounting reported by the observability tools.
enum class Work : std::uint8_t { kCompute, kSpin, kKernel };

class Core {
 public:
  Core(sim::Engine& engine, const CpuModel& model, std::uint64_t rng_seed)
      : engine_(&engine), model_(model), rng_(rng_seed) {}
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  const CpuModel& model() const { return model_; }
  sim::Engine& engine() { return *engine_; }

  /// Current effective frequency under the DVFS model.
  double frequency_ghz() const {
    if (!model_.turbo_enabled) return model_.base_ghz;
    // Frequency degrades continuously with busy-poll residency: a core
    // that spends most of its window spinning draws its power budget and
    // settles at base clock.
    const double penalty = std::min(1.0, spin_load_ / 0.8);
    return model_.turbo_ghz - (model_.turbo_ghz - model_.base_ghz) * penalty;
  }

  /// Scale a base-frequency cost to the current frequency and update the
  /// DVFS residency without suspending (for cost composition).
  sim::Time charge(sim::Time cost_at_base, Work kind) {
    const sim::Time scaled = static_cast<sim::Time>(
        static_cast<double>(cost_at_base) * model_.base_ghz / frequency_ghz());
    account(scaled, kind);
    return scaled;
  }

  /// Execute `cost_at_base` worth of work of the given kind.
  sim::Task<> work(sim::Time cost_at_base, Work kind) {
    const sim::Time scaled = charge(cost_at_base, kind);
    co_await engine_->delay(scaled);
  }

  /// Block without consuming CPU (sleeping on an event). Resets the spin
  /// residency towards idle.
  sim::Task<> idle(sim::Time duration) {
    account(duration, Work::kCompute);  // idle cools the core like compute
    co_await engine_->delay(duration);
  }

  /// One sampled user<->kernel crossing (KPTI/virtualization/jitter aware).
  sim::Time syscall_cost() {
    double cost = static_cast<double>(model_.syscall_crossing);
    if (model_.kpti) cost *= model_.kpti_multiplier;
    cost *= 1.0 + model_.virt_overhead;
    if (model_.syscall_jitter > 0.0) {
      const double factor =
          std::max(0.4, rng_.normal(1.0, model_.syscall_jitter));
      cost *= factor;
    }
    return static_cast<sim::Time>(cost);
  }

  sim::Time memcpy_time(std::uint64_t bytes) const {
    // Small copies are latency-bound (call + cache line touch), not
    // bandwidth-bound: floor at ~40 ns.
    return std::max<sim::Time>(sim::ns(40),
                               model_.memcpy_bandwidth.time_for(bytes));
  }

  /// Convenience: copy `bytes` on this core (the "zero-copy removed" path).
  sim::Task<> do_memcpy(std::uint64_t bytes) {
    co_await work(memcpy_time(bytes), Work::kCompute);
  }

  // Accounting (virtual time spent per work kind).
  sim::Time time_compute() const { return time_compute_; }
  sim::Time time_spin() const { return time_spin_; }
  sim::Time time_kernel() const { return time_kernel_; }
  double spin_load() const { return spin_load_; }

 private:
  void account(sim::Time dur, Work kind) {
    switch (kind) {
      case Work::kCompute: time_compute_ += dur; break;
      case Work::kSpin: time_spin_ += dur; break;
      case Work::kKernel: time_kernel_ += dur; break;
    }
    // Exponentially-weighted spin residency with a ~50 us window: the
    // power/thermal time constant that makes Turbo "sticky".
    constexpr double kTauPs = 50.0 * sim::kMicrosecond;
    const double frac =
        std::min(1.0, static_cast<double>(dur) / kTauPs);
    const double target = kind == Work::kSpin ? 1.0 : 0.0;
    spin_load_ = spin_load_ * (1.0 - frac) + target * frac;
  }

  sim::Engine* engine_;
  CpuModel model_;
  sim::Rng rng_;
  double spin_load_ = 0.0;
  sim::Time time_compute_ = 0;
  sim::Time time_spin_ = 0;
  sim::Time time_kernel_ = 0;
};

}  // namespace cord::os
