// System assembly: puts engine, fabric, NICs, kernels and cores together,
// with named presets for the paper's two testbeds.
//
//   System L — two nodes, Intel i5-4590 (3.3/3.7 GHz, Turbo disabled for
//              benchmarks), ConnectX-6 Dx RoCE back-to-back at 100 Gbit/s
//              (motherboard-limited), bare metal, KPTI off, CoRD prototype
//              supports inline sends.
//   System A — two Azure HB120 nodes, virtualized EPYC 7V73X, virtualized
//              ConnectX-6 InfiniBand at 200 Gbit/s, DVFS cannot be
//              disabled, syscalls are costlier and jittery (virtualized),
//              KPTI off (hardware-mitigated Meltdown), CoRD prototype
//              lacks inline support — producing the bimodal overhead of
//              Fig. 5a.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verbs/verbs.hpp"

namespace cord::core {

struct SystemConfig {
  std::string name;
  sim::Bandwidth wire_bandwidth = sim::Bandwidth::gbit_per_sec(100.0);
  sim::Time wire_propagation = sim::ns(150);
  sim::Bandwidth loopback_bandwidth = sim::Bandwidth::gbit_per_sec(200.0);
  sim::Time loopback_delay = sim::ns(150);
  nic::NicConfig nic;
  os::CpuModel cpu;
  os::KernelConfig kernel;
  /// Whether this system's CoRD prototype supports inline sends.
  bool cord_inline_support = true;
  /// Default for routing poll_cq through the kernel in CoRD mode.
  bool cord_poll_via_kernel = true;
};

/// The paper's local testbed (defaults as benchmarked: Turbo disabled).
SystemConfig system_l();
/// System L with Turbo Boost left on (the DVFS-interaction observation).
SystemConfig system_l_turbo();
/// The Azure HB120 testbed.
SystemConfig system_a();

class System {
 public:
  explicit System(SystemConfig cfg, std::size_t host_count = 2);

  sim::Engine& engine() { return engine_; }
  fabric::Network* network_ptr() { return &network_; }
  const SystemConfig& config() const { return cfg_; }
  std::size_t host_count() const { return hosts_.size(); }
  os::Host& host(std::size_t i) { return *hosts_.at(i); }

  /// The system's tracer, disabled by default (zero data-path cost until
  /// `tracer().set_enabled(true)` arms the trace points).
  trace::Tracer& tracer() { return tracer_; }

  /// System-wide metrics: live views of engine health (events processed,
  /// event-count clamp) — distinct from each host kernel's registry.
  trace::MetricsRegistry& metrics() { return metrics_; }

  /// Context options for a process on this system in the given mode,
  /// applying the system's CoRD capabilities.
  verbs::ContextOptions options(verbs::DataplaneMode mode,
                                os::TenantId tenant = 0) const {
    return verbs::ContextOptions{
        .mode = mode,
        .poll_via_kernel = cfg_.cord_poll_via_kernel,
        .cord_inline_support = cfg_.cord_inline_support,
        .tenant = tenant,
    };
  }

 private:
  SystemConfig cfg_;
  sim::Engine engine_;
  fabric::Network network_{engine_};
  nic::NicRegistry registry_;
  std::vector<std::unique_ptr<os::Host>> hosts_;
  trace::Tracer tracer_{engine_};
  trace::MetricsRegistry metrics_;
};

}  // namespace cord::core
