// System assembly: puts engine, fabric, NICs, kernels and cores together,
// with named presets for the paper's two testbeds.
//
//   System L — two nodes, Intel i5-4590 (3.3/3.7 GHz, Turbo disabled for
//              benchmarks), ConnectX-6 Dx RoCE back-to-back at 100 Gbit/s
//              (motherboard-limited), bare metal, KPTI off, CoRD prototype
//              supports inline sends.
//   System A — two Azure HB120 nodes, virtualized EPYC 7V73X, virtualized
//              ConnectX-6 InfiniBand at 200 Gbit/s, DVFS cannot be
//              disabled, syscalls are costlier and jittery (virtualized),
//              KPTI off (hardware-mitigated Meltdown), CoRD prototype
//              lacks inline support — producing the bimodal overhead of
//              Fig. 5a.
//
// Sharding: a System may partition its hosts across N sim::Engine shards
// (one thread each) synchronized with conservative time windows; the
// lookahead is derived automatically from the minimum propagation delay
// of the links that cross the partition (see sim/sharded.hpp and
// DESIGN.md §12). `shards = 1` (the default) is the exact pre-sharding
// single-engine system.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fabric/topology.hpp"
#include "os/conn.hpp"
#include "os/kernel.hpp"
#include "sim/sharded.hpp"
#include "trace/causal/aggregate.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verbs/verbs.hpp"

namespace cord::core {

struct SystemConfig {
  std::string name;
  sim::Bandwidth wire_bandwidth = sim::Bandwidth::gbit_per_sec(100.0);
  sim::Time wire_propagation = sim::ns(150);
  sim::Bandwidth loopback_bandwidth = sim::Bandwidth::gbit_per_sec(200.0);
  sim::Time loopback_delay = sim::ns(150);
  nic::NicConfig nic;
  os::CpuModel cpu;
  os::KernelConfig kernel;
  /// Whether this system's CoRD prototype supports inline sends.
  bool cord_inline_support = true;
  /// Default for routing poll_cq through the kernel in CoRD mode.
  bool cord_poll_via_kernel = true;
  /// Event-queue backend of every simulation engine: the 4-ary heap or
  /// the calendar queue (the runtime queue=heap|calendar knob,
  /// sim::parse_queue_kind). Both pop the identical (t, seq) order, so
  /// every simulated result is bit-for-bit unchanged either way.
  sim::QueueKind event_queue = sim::QueueKind::kHeap;
  /// Shard-synchronization protocol (the runtime
  /// sync=conservative|speculative knob, sim::parse_sync_mode). The
  /// speculative mode lets shards run ahead of the conservative window
  /// edge, journaling replayable dispatches and rolling back on late
  /// cross-shard arrivals (DESIGN.md §17); simulated results stay
  /// bit-for-bit identical under either mode. Inert when shards == 1.
  sim::SyncMode sync = sim::SyncMode::kConservative;
  /// Speculation throttle: how many lookahead windows past the
  /// conservative edge a shard may run (>= 1; 1 = conservative pacing).
  std::uint32_t speculation_depth = sim::ShardedEngine::kDefaultSpeculationDepth;
  /// Connection-endpoint mode (the runtime conn=exclusive|shared knob,
  /// os::parse_conn_mode). Exclusive gives every logical connection its
  /// own physical QP; shared multiplexes logical connections over a
  /// bounded pool of `shared_qp_pool` physical QPs per destination
  /// (DCT/RDMAvisor-style, os/conn.hpp), keeping the NIC context working
  /// set and host memory bounded at millions of logical connections.
  os::ConnMode conn_mode = os::ConnMode::kExclusive;
  std::uint32_t shared_qp_pool = 64;

  /// Fabric topology between hosts.
  enum class Wiring {
    kFullMesh,  ///< every host pair linked (the default, matches the paper)
    kPairs,     ///< hosts (2k, 2k+1) linked only — a link-partitioned fabric
                ///< with no cross-pair (and so possibly no cross-shard) links
    kRack,      ///< leaf-spine: hosts -> ToR switches -> spine, routed paths
                ///< (rack shape and per-tier parameters from `rack`)
  };
  Wiring wiring = Wiring::kFullMesh;
  /// Rack shape when wiring == kRack. rack.host_count() must equal the
  /// System's host_count; with shards > 1 the placement must be
  /// rack-aligned (all hosts of a rack on one shard).
  fabric::RackConfig rack;
};

/// The paper's local testbed (defaults as benchmarked: Turbo disabled).
SystemConfig system_l();
/// System L with Turbo Boost left on (the DVFS-interaction observation).
SystemConfig system_l_turbo();
/// The Azure HB120 testbed.
SystemConfig system_a();

class System {
 public:
  /// `shards` > 1 partitions the hosts across that many engines. The
  /// default placement is a block partition (host i on shard
  /// i * shards / host_count); pass `placement` (one shard index per
  /// host) to override. Throws std::invalid_argument when the partition
  /// admits no safe lookahead (a cross-shard link with zero propagation).
  explicit System(SystemConfig cfg, std::size_t host_count = 2,
                  std::size_t shards = 1,
                  std::vector<std::uint32_t> placement = {});

  /// Shard 0's engine — the only engine when shards == 1. Single-engine
  /// callers (everything predating sharding) keep working unchanged.
  sim::Engine& engine() { return sharded_.shard(0); }
  /// The shard coordinator (1 shard degrades to plain Engine::run()).
  sim::ShardedEngine& sharded() { return sharded_; }
  std::size_t shard_count() const { return sharded_.shard_count(); }
  std::uint32_t shard_of(nic::NodeId node) const { return placement_.at(node); }
  sim::Engine& engine_for(nic::NodeId node) {
    return sharded_.shard(placement_.at(node));
  }

  fabric::Network* network_ptr() { return &network_; }
  const SystemConfig& config() const { return cfg_; }
  std::size_t host_count() const { return hosts_.size(); }
  os::Host& host(std::size_t i) { return *hosts_.at(i); }

  /// Shard 0's tracer, disabled by default (zero data-path cost until
  /// `tracer().set_enabled(true)` arms the trace points).
  trace::Tracer& tracer() { return *tracers_.at(0); }
  /// Per-shard tracer (records carry the shard's virtual clock; merge
  /// with merged_trace()).
  trace::Tracer& tracer(std::size_t shard) { return *tracers_.at(shard); }
  /// Arm or disarm every shard's tracer.
  void set_tracing(bool on);
  /// All shards' records merged by virtual time (stable: ties keep shard
  /// order, then emission order).
  std::vector<trace::Record> merged_trace() const;
  /// Records dropped across all shard tracers (ring overflow).
  std::uint64_t trace_dropped() const;

  /// Rebuild the system-wide causal aggregate from the current merged
  /// trace (clears previous observations; SLO configuration is kept).
  /// Shard-invariant: same simulation, any shard count or queue backend →
  /// identical aggregate state. Feeds the causal.* gauges in metrics().
  const trace::causal::Aggregator& analyze_causal();
  /// The causal aggregate as last built by analyze_causal() (empty until
  /// the first call). Configure SLOs here before running:
  /// `causal().set_slo(...)` — const_cast-free via the non-const overload.
  trace::causal::Aggregator& causal() { return causal_; }
  const trace::causal::Aggregator& causal() const { return causal_; }

  /// System-wide metrics: live views of engine health (events processed,
  /// event-count clamp) — distinct from each host kernel's registry.
  trace::MetricsRegistry& metrics() { return metrics_; }

  /// Context options for a process on this system in the given mode,
  /// applying the system's CoRD capabilities.
  verbs::ContextOptions options(verbs::DataplaneMode mode,
                                os::TenantId tenant = 0) const {
    return verbs::ContextOptions{
        .mode = mode,
        .poll_via_kernel = cfg_.cord_poll_via_kernel,
        .cord_inline_support = cfg_.cord_inline_support,
        .tenant = tenant,
    };
  }

 private:
  static std::vector<std::uint32_t> make_placement(
      std::size_t host_count, std::size_t shards,
      std::vector<std::uint32_t> placement);

  SystemConfig cfg_;
  std::vector<std::uint32_t> placement_;  // host -> shard (init before network_)
  sim::ShardedEngine sharded_;
  fabric::Network network_;
  nic::NicRegistry registry_;
  std::vector<std::unique_ptr<os::Host>> hosts_;
  std::vector<std::unique_ptr<trace::Tracer>> tracers_;
  trace::MetricsRegistry metrics_;
  trace::causal::Aggregator causal_;
};

}  // namespace cord::core
