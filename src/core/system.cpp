#include "core/system.hpp"

namespace cord::core {

SystemConfig system_l() {
  SystemConfig c;
  c.name = "L";
  // ConnectX-6 Dx at 200 Gbit/s capped to 100 Gbit/s by the motherboard.
  c.wire_bandwidth = sim::Bandwidth::gbit_per_sec(100.0);
  c.wire_propagation = sim::ns(150);  // back-to-back cable
  c.nic = nic::NicConfig{};           // CX-6 class defaults
  c.nic.max_inline = 220;

  c.cpu = os::CpuModel{};
  c.cpu.base_ghz = 3.3;   // i5-4590
  c.cpu.turbo_ghz = 3.7;
  c.cpu.turbo_enabled = false;  // paper: "we disable Turbo Boost"
  c.cpu.kpti = false;           // paper: "we disable KPTI"
  c.cpu.syscall_crossing = sim::ns(180);
  c.cpu.memcpy_bandwidth = sim::Bandwidth::gbyte_per_sec(7.5);

  c.kernel = os::KernelConfig{};
  c.cord_inline_support = true;
  c.cord_poll_via_kernel = true;
  return c;
}

SystemConfig system_l_turbo() {
  SystemConfig c = system_l();
  c.name = "L+turbo";
  c.cpu.turbo_enabled = true;
  return c;
}

SystemConfig system_a() {
  SystemConfig c;
  c.name = "A";
  // Virtualized ConnectX-6 InfiniBand, 200 Gbit/s, through a switch.
  c.wire_bandwidth = sim::Bandwidth::gbit_per_sec(200.0);
  c.wire_propagation = sim::ns(600);

  c.nic = nic::NicConfig{};
  c.nic.pcie_bandwidth = sim::Bandwidth::gbit_per_sec(256.0);  // PCIe gen4 x16
  c.nic.dma_latency = sim::ns(500);      // SR-IOV adds latency
  c.nic.doorbell_latency = sim::ns(400); // virtualized MMIO
  c.nic.interrupt_delivery = sim::ns(1200);
  c.nic.max_inline = 1024;  // CX-6 IB configured for large inline; this is
                            // why the bimodal split sits at ~1 KiB (Fig. 5a)

  c.cpu = os::CpuModel{};
  c.cpu.base_ghz = 2.2;   // EPYC 7V73X base
  c.cpu.turbo_ghz = 3.5;
  c.cpu.turbo_enabled = true;  // cloud policy: DVFS cannot be disabled
  c.cpu.kpti = false;          // Meltdown mitigated in hardware
  c.cpu.syscall_crossing = sim::ns(220);
  c.cpu.virt_overhead = 0.8;   // nested paging, virtualized MSRs
  c.cpu.syscall_jitter = 0.30; // noisy neighbours, hypervisor scheduling
  c.cpu.memcpy_bandwidth = sim::Bandwidth::gbyte_per_sec(12.0);

  c.kernel = os::KernelConfig{};
  c.cord_inline_support = false;  // the paper's prototype gap on system A
  c.cord_poll_via_kernel = true;
  return c;
}

System::System(SystemConfig cfg, std::size_t host_count) : cfg_(std::move(cfg)) {
  for (std::size_t i = 0; i < host_count; ++i) {
    network_.add_node(static_cast<nic::NodeId>(i), cfg_.loopback_bandwidth,
                      cfg_.loopback_delay);
  }
  for (std::size_t i = 0; i < host_count; ++i) {
    for (std::size_t j = i + 1; j < host_count; ++j) {
      network_.connect(static_cast<nic::NodeId>(i), static_cast<nic::NodeId>(j),
                       cfg_.wire_bandwidth, cfg_.wire_propagation);
    }
  }
  for (std::size_t i = 0; i < host_count; ++i) {
    hosts_.push_back(std::make_unique<os::Host>(
        engine_, network_, registry_, static_cast<nic::NodeId>(i), cfg_.nic,
        cfg_.cpu, cfg_.kernel));
  }
  // Engine-health gauges, read live (no per-event bookkeeping). The clamp
  // gauge is how the bench harness notices a truncated run (satellite of
  // the observability work: a clamped run is a lie unless surfaced).
  metrics_.callback_gauge("engine.events_processed", [this] {
    return static_cast<std::int64_t>(engine_.events_processed());
  });
  metrics_.callback_gauge("engine.clamped_events", [this] {
    return static_cast<std::int64_t>(engine_.clamped_events());
  });
}

}  // namespace cord::core
