#include "core/system.hpp"

#include <stdexcept>

#include "trace/export.hpp"

namespace cord::core {

SystemConfig system_l() {
  SystemConfig c;
  c.name = "L";
  // ConnectX-6 Dx at 200 Gbit/s capped to 100 Gbit/s by the motherboard.
  c.wire_bandwidth = sim::Bandwidth::gbit_per_sec(100.0);
  c.wire_propagation = sim::ns(150);  // back-to-back cable
  c.nic = nic::NicConfig{};           // CX-6 class defaults
  c.nic.max_inline = 220;

  c.cpu = os::CpuModel{};
  c.cpu.base_ghz = 3.3;   // i5-4590
  c.cpu.turbo_ghz = 3.7;
  c.cpu.turbo_enabled = false;  // paper: "we disable Turbo Boost"
  c.cpu.kpti = false;           // paper: "we disable KPTI"
  c.cpu.syscall_crossing = sim::ns(180);
  c.cpu.memcpy_bandwidth = sim::Bandwidth::gbyte_per_sec(7.5);

  c.kernel = os::KernelConfig{};
  c.cord_inline_support = true;
  c.cord_poll_via_kernel = true;
  return c;
}

SystemConfig system_l_turbo() {
  SystemConfig c = system_l();
  c.name = "L+turbo";
  c.cpu.turbo_enabled = true;
  return c;
}

SystemConfig system_a() {
  SystemConfig c;
  c.name = "A";
  // Virtualized ConnectX-6 InfiniBand, 200 Gbit/s, through a switch.
  c.wire_bandwidth = sim::Bandwidth::gbit_per_sec(200.0);
  c.wire_propagation = sim::ns(600);

  c.nic = nic::NicConfig{};
  c.nic.pcie_bandwidth = sim::Bandwidth::gbit_per_sec(256.0);  // PCIe gen4 x16
  c.nic.dma_latency = sim::ns(500);      // SR-IOV adds latency
  c.nic.doorbell_latency = sim::ns(400); // virtualized MMIO
  c.nic.interrupt_delivery = sim::ns(1200);
  c.nic.max_inline = 1024;  // CX-6 IB configured for large inline; this is
                            // why the bimodal split sits at ~1 KiB (Fig. 5a)

  c.cpu = os::CpuModel{};
  c.cpu.base_ghz = 2.2;   // EPYC 7V73X base
  c.cpu.turbo_ghz = 3.5;
  c.cpu.turbo_enabled = true;  // cloud policy: DVFS cannot be disabled
  c.cpu.kpti = false;          // Meltdown mitigated in hardware
  c.cpu.syscall_crossing = sim::ns(220);
  c.cpu.virt_overhead = 0.8;   // nested paging, virtualized MSRs
  c.cpu.syscall_jitter = 0.30; // noisy neighbours, hypervisor scheduling
  c.cpu.memcpy_bandwidth = sim::Bandwidth::gbyte_per_sec(12.0);

  c.kernel = os::KernelConfig{};
  c.cord_inline_support = false;  // the paper's prototype gap on system A
  c.cord_poll_via_kernel = true;
  return c;
}

std::vector<std::uint32_t> System::make_placement(
    std::size_t host_count, std::size_t shards,
    std::vector<std::uint32_t> placement) {
  if (shards == 0) throw std::invalid_argument("shards must be >= 1");
  if (placement.empty()) {
    placement.resize(host_count);
    for (std::size_t i = 0; i < host_count; ++i) {
      placement[i] = static_cast<std::uint32_t>(i * shards / host_count);
    }
    return placement;
  }
  if (placement.size() != host_count) {
    throw std::invalid_argument("placement size != host count");
  }
  for (std::uint32_t s : placement) {
    if (s >= shards) throw std::invalid_argument("placement shard out of range");
  }
  return placement;
}

System::System(SystemConfig cfg, std::size_t host_count, std::size_t shards,
               std::vector<std::uint32_t> placement)
    : cfg_(std::move(cfg)),
      placement_(make_placement(host_count, shards, std::move(placement))),
      sharded_(shards, cfg_.event_queue),
      network_([this](fabric::NodeId n) -> sim::Engine& {
        return sharded_.shard(placement_.at(n));
      }) {
  for (std::size_t i = 0; i < host_count; ++i) {
    network_.add_node(static_cast<nic::NodeId>(i), cfg_.loopback_bandwidth,
                      cfg_.loopback_delay);
  }
  switch (cfg_.wiring) {
    case SystemConfig::Wiring::kFullMesh:
      for (std::size_t i = 0; i < host_count; ++i) {
        for (std::size_t j = i + 1; j < host_count; ++j) {
          network_.connect(static_cast<nic::NodeId>(i),
                           static_cast<nic::NodeId>(j), cfg_.wire_bandwidth,
                           cfg_.wire_propagation);
        }
      }
      break;
    case SystemConfig::Wiring::kPairs:
      for (std::size_t i = 0; i + 1 < host_count; i += 2) {
        network_.connect(static_cast<nic::NodeId>(i),
                         static_cast<nic::NodeId>(i + 1), cfg_.wire_bandwidth,
                         cfg_.wire_propagation);
      }
      break;
    case SystemConfig::Wiring::kRack: {
      const fabric::RackConfig& rack = cfg_.rack;
      if (rack.host_count() != host_count) {
        throw std::invalid_argument(
            "System: rack topology (" + std::to_string(rack.racks) + " x " +
            std::to_string(rack.hosts_per_rack) + " hosts) does not match "
            "host_count = " + std::to_string(host_count));
      }
      // Switch placement: a rack (its hosts + its ToR) is one engine
      // domain, so the ToR rides on its rack's shard; rack-misaligned host
      // placements are rejected up front (compute_routes would also catch
      // them, with a less direct message). The spine never drives a hop
      // resource (both uplink directions bind ToR-side), so its placement
      // entry is only needed for Network bookkeeping.
      for (std::size_t r = 0; r < rack.racks; ++r) {
        const std::uint32_t shard = placement_.at(r * rack.hosts_per_rack);
        for (std::size_t h = 1; h < rack.hosts_per_rack; ++h) {
          if (placement_.at(r * rack.hosts_per_rack + h) != shard) {
            throw std::invalid_argument(
                "System: rack " + std::to_string(r) +
                " straddles shards — sharded rack topologies require "
                "rack-aligned placements (all hosts of a rack on one "
                "shard)");
          }
        }
        placement_.push_back(shard);  // ToR of rack r
      }
      if (rack.racks > 1) placement_.push_back(placement_.at(0));  // spine
      fabric::build_rack(network_, rack);
      break;
    }
  }
  // The partition's lookahead, per shard pair: the minimum source-side
  // propagation of any routed path crossing each pair (pairs no path
  // crosses stay unbounded). A cross-shard path with zero propagation
  // would admit no parallel window at all, so it is rejected here (at
  // setup) rather than deadlocking or — worse — silently reordering at
  // run time.
  if (shards > 1) {
    sharded_.set_lookahead(network_.cross_lookahead_matrix(
        [this](fabric::NodeId n) { return placement_.at(n); }, shards));
  }
  sharded_.set_sync(cfg_.sync, cfg_.speculation_depth);
  for (std::size_t i = 0; i < host_count; ++i) {
    hosts_.push_back(std::make_unique<os::Host>(
        engine_for(static_cast<nic::NodeId>(i)), network_, registry_,
        static_cast<nic::NodeId>(i), cfg_.nic, cfg_.cpu, cfg_.kernel));
  }
  tracers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tracers_.push_back(std::make_unique<trace::Tracer>(sharded_.shard(s)));
    // Disjoint span-id sequences per shard: a merged stream keeps one
    // correlation id per logical work request.
    tracers_.back()->set_span_range(static_cast<std::uint32_t>(s) + 1,
                                    static_cast<std::uint32_t>(shards));
  }
  // Engine-health gauges, read live (no per-event bookkeeping). The clamp
  // gauge is how the bench harness notices a truncated run (satellite of
  // the observability work: a clamped run is a lie unless surfaced).
  metrics_.callback_gauge("engine.events_processed", [this] {
    return static_cast<std::int64_t>(sharded_.events_processed());
  });
  metrics_.callback_gauge("engine.clamped_events", [this] {
    return static_cast<std::int64_t>(sharded_.clamped_events());
  });
  // Event-queue health: depth high-water mark and (for the calendar
  // backend) resize count — live views, zero per-event bookkeeping.
  metrics_.callback_gauge("engine.queue_peak_depth", [this] {
    return static_cast<std::int64_t>(sharded_.queue_peak_depth());
  });
  metrics_.callback_gauge("engine.queue_resizes", [this] {
    return static_cast<std::int64_t>(sharded_.queue_resizes());
  });
  // System-wide NIC doorbell/burst totals, summed over hosts at read
  // time. Mirrors the per-host gauges each Kernel exposes through
  // proc_read("metrics"), so fleet-level dashboards don't have to crawl
  // every host.
  const auto nic_sum = [this](std::uint64_t nic::NicCounters::*field) {
    std::int64_t total = 0;
    for (const auto& h : hosts_) {
      total += static_cast<std::int64_t>(h->nic().counters().*field);
    }
    return total;
  };
  metrics_.callback_gauge("nic.doorbells", [nic_sum] {
    return nic_sum(&nic::NicCounters::doorbells);
  });
  metrics_.callback_gauge("nic.doorbells_coalesced", [nic_sum] {
    return nic_sum(&nic::NicCounters::doorbells_coalesced);
  });
  metrics_.callback_gauge("nic.sq_bursts", [nic_sum] {
    return nic_sum(&nic::NicCounters::sq_bursts);
  });
  metrics_.callback_gauge("nic.sq_burst_wrs", [nic_sum] {
    return nic_sum(&nic::NicCounters::sq_burst_wrs);
  });
  metrics_.callback_gauge("nic.sq_fused_batches", [nic_sum] {
    return nic_sum(&nic::NicCounters::sq_fused_batches);
  });
  metrics_.callback_gauge("nic.seg_msgs", [nic_sum] {
    return nic_sum(&nic::NicCounters::seg_msgs);
  });
  metrics_.callback_gauge("nic.seg_chunks", [nic_sum] {
    return nic_sum(&nic::NicCounters::seg_chunks);
  });
  // Shard-synchronization health: live views of the coordinator's
  // per-run stats. The speculation counters stay zero under the
  // conservative sync mode (and with one shard), so dashboards can key
  // "is the optimistic mode doing anything" off sim.shard.journaled alone.
  metrics_.callback_gauge("sim.shard.windows", [this] {
    return static_cast<std::int64_t>(sharded_.stats().windows);
  });
  metrics_.callback_gauge("sim.shard.messages", [this] {
    return static_cast<std::int64_t>(sharded_.stats().messages);
  });
  metrics_.callback_gauge("sim.shard.rollbacks", [this] {
    return static_cast<std::int64_t>(sharded_.stats().rollbacks);
  });
  metrics_.callback_gauge("sim.shard.rolled_back_events", [this] {
    return static_cast<std::int64_t>(sharded_.stats().rolled_back_events);
  });
  metrics_.callback_gauge("sim.shard.journaled_effects", [this] {
    return static_cast<std::int64_t>(sharded_.stats().journaled_effects);
  });
  metrics_.callback_gauge("sim.shard.cancelled_messages", [this] {
    return static_cast<std::int64_t>(sharded_.stats().cancelled_messages);
  });
  metrics_.callback_gauge("sim.shard.max_speculation_depth", [this] {
    return static_cast<std::int64_t>(sharded_.stats().max_speculation_depth);
  });
  // Causal-layer health: spans analyzed, watchdog firings, and the global
  // p99 end-to-end latency — all views of the aggregate analyze_causal()
  // last built (zero until it runs; no data-path cost ever).
  metrics_.callback_gauge("causal.spans", [this] {
    return static_cast<std::int64_t>(causal_.spans());
  });
  metrics_.callback_gauge("causal.watchdog_violations", [this] {
    return static_cast<std::int64_t>(causal_.watchdog_violations());
  });
  metrics_.callback_gauge("causal.p99_e2e_ns", [this] {
    return static_cast<std::int64_t>(causal_.e2e().percentile(99.0) / 1e3);
  });
}

void System::set_tracing(bool on) {
  for (auto& t : tracers_) t->set_enabled(on);
}

std::vector<trace::Record> System::merged_trace() const {
  // Single shard: the stream as emitted (byte-identical to the tracer's
  // snapshot; emission order is the pre-sharding trace contract).
  if (tracers_.size() == 1) return tracers_.front()->snapshot();
  std::vector<std::vector<trace::Record>> streams;
  streams.reserve(tracers_.size());
  for (const auto& t : tracers_) streams.push_back(t->snapshot());
  return trace::merge_by_time(std::move(streams));
}

std::uint64_t System::trace_dropped() const {
  std::uint64_t d = 0;
  for (const auto& t : tracers_) d += t->dropped();
  return d;
}

const trace::causal::Aggregator& System::analyze_causal() {
  causal_.clear();
  causal_.ingest(merged_trace());
  return causal_;
}

}  // namespace cord::core
