// Per-NIC pool of in-flight send work requests.
//
// While a message is in flight, its SendWr is shared between the wire
// event, the delivery continuation, retry timers and the ACK path. This
// used to be one `std::shared_ptr<SendWr>` heap allocation (control block
// + payload) per posted WR; WrPool instead hands out intrusively
// refcounted slots from a slab-backed freelist, so steady-state traffic
// recycles the same few nodes with zero allocation. The simulation is
// single-threaded, so refcounts are plain integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "nic/types.hpp"
#include "sim/slab.hpp"

namespace cord::nic {

class WrPool;

/// Refcounted handle to a pooled SendWr. Copying bumps the count; the
/// node returns to its pool's freelist when the last handle drops.
class WrRef {
 public:
  WrRef() = default;
  WrRef(const WrRef& o) : node_(o.node_) {
    if (node_ != nullptr) ++node_->refs;
  }
  WrRef(WrRef&& o) noexcept : node_(std::exchange(o.node_, nullptr)) {}
  WrRef& operator=(const WrRef& o) {
    if (this != &o) {
      release();
      node_ = o.node_;
      if (node_ != nullptr) ++node_->refs;
    }
    return *this;
  }
  WrRef& operator=(WrRef&& o) noexcept {
    if (this != &o) {
      release();
      node_ = std::exchange(o.node_, nullptr);
    }
    return *this;
  }
  ~WrRef() { release(); }

  explicit operator bool() const { return node_ != nullptr; }
  SendWr& operator*() const { return node_->wr; }
  SendWr* operator->() const { return &node_->wr; }

 private:
  friend class WrPool;

  struct Node {
    SendWr wr;
    std::uint32_t refs = 0;
    WrPool* pool = nullptr;
    Node* next_free = nullptr;
  };

  explicit WrRef(Node* node) : node_(node) {}
  inline void release();

  Node* node_ = nullptr;
};

class WrPool {
 public:
  WrPool() = default;
  WrPool(const WrPool&) = delete;
  WrPool& operator=(const WrPool&) = delete;

  /// Move `wr` into a pooled slot and return the owning handle.
  WrRef acquire(SendWr&& wr) {
    WrRef::Node* node = free_;
    if (node != nullptr) {
      free_ = node->next_free;
      node->next_free = nullptr;
    } else {
      nodes_.push_back(sim::make_slab<WrRef::Node>());
      node = nodes_.back().get();
      node->pool = this;
    }
    node->wr = std::move(wr);
    node->refs = 1;
    ++outstanding_;
    return WrRef{node};
  }

  /// Slots currently held by live WrRefs (in-flight work requests).
  std::size_t outstanding() const { return outstanding_; }
  /// Total slots ever created; plateaus at the peak in-flight depth.
  std::size_t allocated() const { return nodes_.size(); }

 private:
  friend class WrRef;

  void recycle(WrRef::Node* node) {
    // Drop any captured inline payload eagerly: the slab must not pin
    // peak-sized buffers for the whole run.
    node->wr.inline_payload = {};
    node->next_free = free_;
    free_ = node;
    --outstanding_;
  }

  // Slab-backed: node addresses are stable, and nodes acquired together
  // sit adjacent in the arena's size-classed slabs.
  std::vector<sim::SlabPtr<WrRef::Node>> nodes_;
  WrRef::Node* free_ = nullptr;
  std::size_t outstanding_ = 0;
};

inline void WrRef::release() {
  if (node_ != nullptr && --node_->refs == 0) node_->pool->recycle(node_);
  node_ = nullptr;
}

}  // namespace cord::nic
