// Timing/capacity parameters of the simulated NIC. Defaults approximate a
// ConnectX-6-class device; the per-system presets in src/core/systems.cpp
// override them per testbed.
#pragma once

#include <cstdint>

#include "sim/units.hpp"

namespace cord::nic {

struct NicConfig {
  /// PCIe DMA engine bandwidth (shared by reads and writes).
  sim::Bandwidth pcie_bandwidth = sim::Bandwidth::gbit_per_sec(128.0);
  /// Fixed initiation latency of a DMA transaction (first chunk only).
  sim::Time dma_latency = sim::ns(300);
  /// MMIO doorbell write to NIC starting to look at the WQE.
  sim::Time doorbell_latency = sim::ns(250);
  /// NIC processing per send WQE (fetch, parse, schedule).
  sim::Time wqe_processing = sim::ns(80);
  /// NIC processing on the responder for an inbound message.
  sim::Time rx_processing = sim::ns(80);
  /// Writing a CQE back to host memory.
  sim::Time cqe_write = sim::ns(100);
  /// Handling an inbound ACK/NAK on the requester.
  sim::Time ack_processing = sim::ns(50);
  /// Raising an interrupt: NIC -> host IRQ handler entry.
  sim::Time interrupt_delivery = sim::ns(600);
  /// Path MTU; also the UD maximum message size.
  std::uint32_t mtu = 4096;
  /// Per-packet header bytes charged on the wire (RoCE/IB headers).
  std::uint32_t header_bytes = 58;
  /// ACK packet size on the wire.
  std::uint32_t ack_bytes = 26;
  /// Largest inline payload the device accepts (0 disables inline).
  std::uint32_t max_inline = 220;
  /// Receiver-not-ready retry backoff and retry budget.
  sim::Time rnr_timer = sim::us(10);
  std::uint32_t rnr_retries = 8;
  /// On-NIC connection-context cache (ICM model, nic/icm.hpp): how many
  /// QP contexts and MR contexts fit on-die. 0 = unbounded (model off,
  /// nothing charged — the default, keeping existing scenarios
  /// byte-identical). When bounded, a miss charges icm_miss_latency on
  /// the doorbell ring (QP context) or the WQE fetch (MR context) — the
  /// host-memory fetch over PCIe that produces the connection-count
  /// performance cliff.
  std::uint32_t icm_qp_capacity = 0;
  std::uint32_t icm_mr_capacity = 0;
  sim::Time icm_miss_latency = sim::ns(600);
};

}  // namespace cord::nic
