// Shared receive queue: one pool of receive WQEs consumed by many QPs.
// This is how verbs-based MPI implementations scale eager protocols to
// full-mesh connectivity without per-QP receive rings.
#pragma once

#include <cstdint>
#include <deque>

#include "nic/types.hpp"

namespace cord::nic {

class SharedReceiveQueue {
 public:
  SharedReceiveQueue(std::uint32_t srqn, ProtectionDomainId pd,
                     std::uint32_t capacity)
      : srqn_(srqn), pd_(pd), capacity_(capacity) {}

  std::uint32_t srqn() const { return srqn_; }
  ProtectionDomainId pd() const { return pd_; }
  std::uint32_t capacity() const { return capacity_; }
  std::size_t depth() const { return wqes_.size(); }
  std::uint64_t consumed() const { return consumed_; }

 private:
  friend class Nic;

  std::uint32_t srqn_;
  ProtectionDomainId pd_;
  std::uint32_t capacity_;
  std::deque<RecvWr> wqes_;
  std::uint64_t consumed_ = 0;
};

}  // namespace cord::nic
