// Memory registration: the NIC-side table that makes zero-copy safe.
// Every DMA the simulated NIC performs is validated against this table,
// exactly like the real device validates lkeys/rkeys — this is what lets
// CoRD keep zero-copy while the kernel owns the data path.
//
// Layout: the NIC allocates lkey == rkey per MR (as mlx5 does), so one
// open-addressed hash table keyed by that key serves both the local
// (lkey) and remote (rkey) validation paths — every data-plane check is
// a single probe sequence over a flat array instead of two chained
// `unordered_map`s. Region objects live on the engine's size-classed
// slabs (sim::SlabPtr + freelist), so `const MemoryRegion*` stays valid
// across registrations and table growth — kernel and verbs layers hold
// such pointers long term. Deregistration tombstones the index slot and
// recycles the slab slot for the next registration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nic/types.hpp"
#include "sim/slab.hpp"

namespace cord::nic {

struct MemoryRegion {
  std::uintptr_t addr = 0;
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint32_t access = kAccessNone;
  ProtectionDomainId pd = 0;

  bool covers(std::uintptr_t a, std::size_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
};

class MrTable {
 public:
  MrTable() : slots_(kInitialBuckets) {}

  const MemoryRegion& register_mr(ProtectionDomainId pd, std::uintptr_t addr,
                                  std::size_t length, std::uint32_t access) {
    const std::uint32_t key = next_key_++;
    MemoryRegion* mr;
    if (!free_regions_.empty()) {
      mr = free_regions_.back();
      free_regions_.pop_back();
    } else {
      regions_.push_back(sim::make_slab<MemoryRegion>());
      mr = regions_.back().get();
    }
    *mr = MemoryRegion{addr, length, key, key, access, pd};
    insert(key, mr);
    return *mr;
  }

  bool deregister_mr(std::uint32_t lkey) {
    Slot* s = probe(lkey);
    if (s == nullptr) return false;
    free_regions_.push_back(s->mr);
    s->state = Slot::kTombstone;
    s->mr = nullptr;
    --size_;
    ++tombstones_;
    return true;
  }

  /// Validate a local SGE: lkey exists, PD matches, range is covered.
  /// `needs_local_write` is set for receive buffers and read-response
  /// targets.
  const MemoryRegion* check_local(const Sge& sge, ProtectionDomainId pd,
                                  bool needs_local_write) const {
    const Slot* s = probe(sge.lkey);
    if (s == nullptr) return nullptr;
    const MemoryRegion& mr = *s->mr;
    if (mr.pd != pd) return nullptr;
    if (!mr.covers(sge.addr, sge.length)) return nullptr;
    if (needs_local_write && (mr.access & kAccessLocalWrite) == 0) return nullptr;
    return &mr;
  }

  /// Validate a remote access (inbound RDMA read/write).
  const MemoryRegion* check_remote(std::uint32_t rkey, std::uintptr_t addr,
                                   std::size_t len, std::uint32_t required_access) const {
    const Slot* s = probe(rkey);
    if (s == nullptr) return nullptr;
    const MemoryRegion& mr = *s->mr;
    if ((mr.access & required_access) != required_access) return nullptr;
    if (!mr.covers(addr, len)) return nullptr;
    return &mr;
  }

  std::size_t size() const { return size_; }
  /// Index buckets (power of two); exposed so tests can assert that
  /// deregister/re-register cycles recycle slots instead of growing.
  std::size_t bucket_count() const { return slots_.size(); }
  /// Stable region slabs ever created; plateaus at peak live MR count.
  std::size_t region_slabs() const { return regions_.size(); }

 private:
  static constexpr std::size_t kInitialBuckets = 64;

  struct Slot {
    enum State : std::uint8_t { kEmpty = 0, kFull, kTombstone };
    std::uint32_t key = 0;
    State state = kEmpty;
    MemoryRegion* mr = nullptr;
  };

  // Keys are sequential (0x1000, 0x1001, ...); Fibonacci mixing spreads
  // them across the table so linear probes stay short.
  std::size_t bucket_of(std::uint32_t key) const {
    return (key * 2654435761u) & (slots_.size() - 1);
  }

  const Slot* probe(std::uint32_t key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = bucket_of(key);; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.state == Slot::kEmpty) return nullptr;
      if (s.state == Slot::kFull && s.key == key) return &s;
    }
  }
  Slot* probe(std::uint32_t key) {
    return const_cast<Slot*>(std::as_const(*this).probe(key));
  }

  void insert(std::uint32_t key, MemoryRegion* mr) {
    // Keep (full + tombstone) occupancy under 3/4 so probes terminate
    // quickly; rehashing drops accumulated tombstones. Grow only when the
    // live entries alone would keep the table past half full — otherwise
    // rehash in place, so deregister/re-register churn sheds tombstones
    // without doubling the table forever.
    if ((size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      const bool grow = (size_ + 1) * 2 > slots_.size();
      rehash(grow ? slots_.size() * 2 : slots_.size());
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = bucket_of(key);; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state != Slot::kFull) {
        if (s.state == Slot::kTombstone) --tombstones_;
        s = Slot{key, Slot::kFull, mr};
        ++size_;
        return;
      }
    }
  }

  void rehash(std::size_t new_buckets) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_buckets, Slot{});
    tombstones_ = 0;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.state == Slot::kFull) insert(s.key, s.mr);
    }
  }

  std::vector<Slot> slots_;
  // Stable slab storage for MR objects (pointers outlive table growth).
  std::vector<sim::SlabPtr<MemoryRegion>> regions_;
  std::vector<MemoryRegion*> free_regions_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::uint32_t next_key_ = 0x1000;
};

}  // namespace cord::nic
