// Memory registration: the NIC-side table that makes zero-copy safe.
// Every DMA the simulated NIC performs is validated against this table,
// exactly like the real device validates lkeys/rkeys — this is what lets
// CoRD keep zero-copy while the kernel owns the data path.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "nic/types.hpp"

namespace cord::nic {

struct MemoryRegion {
  std::uintptr_t addr = 0;
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint32_t access = kAccessNone;
  ProtectionDomainId pd = 0;

  bool covers(std::uintptr_t a, std::size_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
};

/// Registration table; lkey and rkey spaces are distinct (as in mlx5,
/// where they happen to be equal per MR — we keep them equal too, but look
/// them up through separate indices to model the separate validation paths).
class MrTable {
 public:
  const MemoryRegion& register_mr(ProtectionDomainId pd, std::uintptr_t addr,
                                  std::size_t length, std::uint32_t access) {
    const std::uint32_t key = next_key_++;
    MemoryRegion mr{addr, length, key, key, access, pd};
    auto [it, ok] = by_lkey_.emplace(key, mr);
    by_rkey_.emplace(key, &it->second);
    return it->second;
  }

  bool deregister_mr(std::uint32_t lkey) {
    auto it = by_lkey_.find(lkey);
    if (it == by_lkey_.end()) return false;
    by_rkey_.erase(it->second.rkey);
    by_lkey_.erase(it);
    return true;
  }

  /// Validate a local SGE: lkey exists, PD matches, range is covered.
  /// `needs_local_write` is set for receive buffers and read-response
  /// targets.
  const MemoryRegion* check_local(const Sge& sge, ProtectionDomainId pd,
                                  bool needs_local_write) const {
    auto it = by_lkey_.find(sge.lkey);
    if (it == by_lkey_.end()) return nullptr;
    const MemoryRegion& mr = it->second;
    if (mr.pd != pd) return nullptr;
    if (!mr.covers(sge.addr, sge.length)) return nullptr;
    if (needs_local_write && (mr.access & kAccessLocalWrite) == 0) return nullptr;
    return &mr;
  }

  /// Validate a remote access (inbound RDMA read/write).
  const MemoryRegion* check_remote(std::uint32_t rkey, std::uintptr_t addr,
                                   std::size_t len, std::uint32_t required_access) const {
    auto it = by_rkey_.find(rkey);
    if (it == by_rkey_.end()) return nullptr;
    const MemoryRegion& mr = *it->second;
    if ((mr.access & required_access) != required_access) return nullptr;
    if (!mr.covers(addr, len)) return nullptr;
    return &mr;
  }

  std::size_t size() const { return by_lkey_.size(); }

 private:
  std::unordered_map<std::uint32_t, MemoryRegion> by_lkey_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_rkey_;
  std::uint32_t next_key_ = 0x1000;
};

}  // namespace cord::nic
