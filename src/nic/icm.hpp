// On-NIC connection-context cache (ICM model).
//
// ConnectX-class devices keep QP/MR context structures in host memory
// (Interconnect Context Memory) and cache only the hot entries on-die.
// A working set that outgrows the cache pays a PCIe round trip per miss
// on doorbell ring and WQE fetch — the connection-count performance
// cliff that motivates shared-connection designs (PAPERS.md: RDMAvisor).
//
// Deterministic LRU: `touch` is the only mutation on the data path, the
// recency list is an intrusive doubly-linked list over dense slots, and
// the key index is only ever probed (never iterated), so replay order —
// and therefore every charged miss — is a pure function of the touch
// sequence.
//
// Capacity 0 disables the model entirely: every touch hits, nothing is
// counted or charged. That is the default, which keeps all pre-existing
// scenarios (goldens, canonical traces) byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cord::nic {

class IcmCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  explicit IcmCache(std::uint32_t capacity = 0) : capacity_(capacity) {}

  /// Access the context for `key`. Returns true on hit; on miss installs
  /// the key as most-recently-used, evicting the LRU entry if full.
  bool touch(std::uint32_t key) {
    if (capacity_ == 0) return true;  // model disabled
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      unlink(it->second);
      push_front(it->second);
      return true;
    }
    ++stats_.misses;
    std::uint32_t slot;
    if (map_.size() >= capacity_) {
      // Reuse the LRU victim's slot for the new key.
      slot = tail_;
      ++stats_.evictions;
      map_.erase(nodes_[slot].key);
      unlink(slot);
      nodes_[slot].key = key;
    } else if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      nodes_[slot].key = key;
    } else {
      slot = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{key, kNil, kNil});
    }
    push_front(slot);
    map_.emplace(key, slot);
    return false;
  }

  /// Drop `key` (its context object was destroyed: QP destroy, MR
  /// deregister). Required for correctness, not just hygiene — the MR
  /// table recycles lkeys, so a stale entry could falsely hit for a
  /// later, unrelated context.
  void erase(std::uint32_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    unlink(it->second);
    free_.push_back(it->second);
    map_.erase(it);
  }

  std::uint32_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ != 0; }
  std::size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  struct Node {
    std::uint32_t key = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t slot) {
    Node& n = nodes_[slot];
    if (n.prev != kNil) nodes_[n.prev].next = n.next; else head_ = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev; else tail_ = n.prev;
    n.prev = n.next = kNil;
  }
  void push_front(std::uint32_t slot) {
    Node& n = nodes_[slot];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil) nodes_[head_].prev = slot; else tail_ = slot;
    head_ = slot;
  }

  std::uint32_t capacity_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::unordered_map<std::uint32_t, std::uint32_t> map_;  // key -> slot
  Stats stats_;
};

}  // namespace cord::nic
