// Completion queue: a bounded ring of CQEs living in host memory. Polling
// it costs nothing at the device (the paper's "polling" pillar): the CPU
// cost of a poll is charged by the verbs layer. Arming requests a one-shot
// interrupt on the next completion (the `ibv_req_notify_cq` path used when
// polling is disabled).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "nic/types.hpp"

namespace cord::nic {

class CompletionQueue {
 public:
  CompletionQueue(std::uint32_t cqn, std::uint32_t capacity)
      : cqn_(cqn), capacity_(capacity) {}

  std::uint32_t cqn() const { return cqn_; }
  std::uint32_t capacity() const { return capacity_; }
  bool overflowed() const { return overflowed_; }
  std::size_t depth() const { return entries_.size(); }

  /// Device side: append a CQE. Returns false (and latches the overflow
  /// flag) if the ring is full — a fatal condition, as on real hardware.
  bool push(const Cqe& cqe) {
    if (entries_.size() >= capacity_) {
      overflowed_ = true;
      return false;
    }
    entries_.push_back(cqe);
    if (armed_) {
      armed_ = false;
      if (on_event_) on_event_(*this);
    }
    return true;
  }

  /// Host side: harvest up to out.size() completions. Returns the count.
  std::size_t poll(std::span<Cqe> out) {
    std::size_t n = 0;
    while (n < out.size() && !entries_.empty()) {
      out[n++] = entries_.front();
      entries_.pop_front();
    }
    return n;
  }

  /// Request a one-shot completion event (interrupt) on the next CQE.
  void arm() { armed_ = true; }
  bool armed() const { return armed_; }

  /// Installed by the kernel: invoked when an armed CQ receives a CQE.
  void set_event_handler(std::function<void(CompletionQueue&)> handler) {
    on_event_ = std::move(handler);
  }

 private:
  std::uint32_t cqn_;
  std::uint32_t capacity_;
  std::deque<Cqe> entries_;
  bool armed_ = false;
  bool overflowed_ = false;
  std::function<void(CompletionQueue&)> on_event_;
};

}  // namespace cord::nic
