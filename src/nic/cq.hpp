// Completion queue: a bounded ring of CQEs living in host memory. Polling
// it costs nothing at the device (the paper's "polling" pillar): the CPU
// cost of a poll is charged by the verbs layer. Arming requests a one-shot
// interrupt on the next completion (the `ibv_req_notify_cq` path used when
// polling is disabled).
//
// Storage is a power-of-two ring over a flat vector (real CQs are rings in
// host memory): push/poll are index arithmetic with no per-CQE allocation.
// The ring starts small and doubles up to `capacity` on demand, so huge
// capacities (benches create 2^20-entry CQs) cost nothing until used.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nic/types.hpp"

namespace cord::nic {

class CompletionQueue {
 public:
  CompletionQueue(std::uint32_t cqn, std::uint32_t capacity)
      : cqn_(cqn), capacity_(capacity) {}

  std::uint32_t cqn() const { return cqn_; }
  std::uint32_t capacity() const { return capacity_; }
  bool overflowed() const { return overflowed_; }
  std::size_t depth() const { return count_; }

  /// Device side: append a CQE. Returns false (and latches the overflow
  /// flag) if the ring is full — a fatal condition, as on real hardware.
  bool push(const Cqe& cqe) {
    if (count_ >= capacity_) {
      overflowed_ = true;
      return false;
    }
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) & (ring_.size() - 1)] = cqe;
    ++count_;
    if (armed_) {
      armed_ = false;
      if (on_event_) on_event_(*this);
    }
    return true;
  }

  /// Host side: harvest up to out.size() completions. Returns the count.
  std::size_t poll(std::span<Cqe> out) {
    std::size_t n = 0;
    const std::size_t mask = ring_.empty() ? 0 : ring_.size() - 1;
    while (n < out.size() && count_ > 0) {
      out[n++] = ring_[head_];
      head_ = (head_ + 1) & mask;
      --count_;
    }
    return n;
  }

  /// Request a one-shot completion event (interrupt) on the next CQE.
  void arm() { armed_ = true; }
  bool armed() const { return armed_; }

  /// Installed by the kernel: invoked when an armed CQ receives a CQE.
  void set_event_handler(std::function<void(CompletionQueue&)> handler) {
    on_event_ = std::move(handler);
  }

 private:
  void grow() {
    const std::size_t old_size = ring_.size();
    std::size_t new_size = old_size == 0 ? 16 : old_size * 2;
    if (new_size > capacity_) {
      // Round the final allocation up to a power of two so index masking
      // keeps working; count_ still enforces `capacity_`.
      new_size = 1;
      while (new_size < capacity_) new_size *= 2;
    }
    std::vector<Cqe> next(new_size);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = ring_[(head_ + i) & (old_size - 1)];
    }
    ring_ = std::move(next);
    head_ = 0;
  }

  std::uint32_t cqn_;
  std::uint32_t capacity_;
  std::vector<Cqe> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool armed_ = false;
  bool overflowed_ = false;
  std::function<void(CompletionQueue&)> on_event_;
};

}  // namespace cord::nic
