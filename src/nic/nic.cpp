#include "nic/nic.hpp"

#include <algorithm>
#include <cstring>

#include "nic/segment.hpp"
#include "trace/trace.hpp"

namespace cord::nic {

std::string_view to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocalLengthError: return "local-length-error";
    case WcStatus::kLocalProtectionError: return "local-protection-error";
    case WcStatus::kRemoteAccessError: return "remote-access-error";
    case WcStatus::kRemoteInvalidRequest: return "remote-invalid-request";
    case WcStatus::kRnrRetryExceeded: return "rnr-retry-exceeded";
    case WcStatus::kWorkRequestFlushed: return "work-request-flushed";
  }
  return "unknown";
}

std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kSend: return "send";
    case Opcode::kSendWithImm: return "send-imm";
    case Opcode::kRdmaWrite: return "rdma-write";
    case Opcode::kRdmaWriteWithImm: return "rdma-write-imm";
    case Opcode::kRdmaRead: return "rdma-read";
    case Opcode::kFetchAdd: return "fetch-add";
    case Opcode::kCompareSwap: return "compare-swap";
  }
  return "unknown";
}

namespace {

WcOpcode wc_opcode(Opcode op) {
  switch (op) {
    case Opcode::kSend:
    case Opcode::kSendWithImm:
      return WcOpcode::kSend;
    case Opcode::kRdmaWrite:
    case Opcode::kRdmaWriteWithImm:
      return WcOpcode::kRdmaWrite;
    case Opcode::kRdmaRead:
      return WcOpcode::kRdmaRead;
    case Opcode::kFetchAdd:
      return WcOpcode::kFetchAdd;
    case Opcode::kCompareSwap:
      return WcOpcode::kCompareSwap;
  }
  return WcOpcode::kSend;
}

std::uint64_t payload_len(const SendWr& wr) {
  return wr.inline_data ? wr.inline_payload.size() : wr.sge.length;
}

const std::byte* payload_ptr(const SendWr& wr) {
  return wr.inline_data ? wr.inline_payload.data()
                        : reinterpret_cast<const std::byte*>(wr.sge.addr);
}

}  // namespace

void NicRegistry::add(Nic& nic) {
  if (nic.node() >= nics_.size()) nics_.resize(nic.node() + 1, nullptr);
  nics_[nic.node()] = &nic;
}

Nic::Nic(sim::Engine& engine, fabric::Network& network, NicRegistry& registry,
         NodeId node, const NicConfig& cfg)
    : engine_(&engine),
      network_(&network),
      registry_(&registry),
      node_(node),
      cfg_(cfg),
      processing_(engine),
      dma_rd_(engine),
      dma_wr_(engine),
      icm_qp_(cfg.icm_qp_capacity),
      icm_mr_(cfg.icm_mr_capacity) {
  registry.add(*this);
}

CompletionQueue* Nic::create_cq(std::uint32_t capacity) {
  const std::uint32_t cqn = kFirstCqn + static_cast<std::uint32_t>(cqs_.size());
  cqs_.push_back(sim::make_slab<CompletionQueue>(cqn, capacity));
  return cqs_.back().get();
}

QueuePair* Nic::create_qp(const QpConfig& cfg) {
  if (cfg.send_cq == nullptr || cfg.recv_cq == nullptr) return nullptr;
  const std::uint32_t qpn = kFirstQpn + static_cast<std::uint32_t>(qps_.size());
  QpConfig clamped = cfg;
  // The device caps the inline size it accepts (ibv_create_qp adjusts
  // cap.max_inline_data the same way).
  clamped.max_inline = std::min(clamped.max_inline, cfg_.max_inline);
  qps_.push_back(sim::make_slab<QueuePair>(qpn, clamped));
  return qps_.back().get();
}

void Nic::destroy_qp(std::uint32_t qpn) {
  const std::uint32_t idx = qpn - kFirstQpn;
  if (idx < qps_.size()) qps_[idx].reset();
  icm_qp_.erase(qpn);
}

SharedReceiveQueue* Nic::create_srq(ProtectionDomainId pd, std::uint32_t capacity) {
  const std::uint32_t srqn = kFirstSrqn + static_cast<std::uint32_t>(srqs_.size());
  srqs_.push_back(sim::make_slab<SharedReceiveQueue>(srqn, pd, capacity));
  return srqs_.back().get();
}

int Nic::post_srq_recv(SharedReceiveQueue& srq, RecvWr wr) {
  if (srq.wqes_.size() >= srq.capacity()) return kErrQueueFull;
  if (wr.sge.length > 0 &&
      mrs_.check_local(wr.sge, srq.pd(), /*needs_local_write=*/true) == nullptr) {
    return kErrInvalid;
  }
  srq.wqes_.push_back(wr);
  return kOk;
}

int Nic::modify_qp(QueuePair& qp, QpState target, AddressHandle dest) {
  switch (target) {
    case QpState::kReset:
      qp.state_ = QpState::kReset;
      qp.sq_.clear();
      qp.rq_.clear();
      qp.sq_inflight_ = 0;
      return kOk;
    case QpState::kInit:
      if (qp.state_ != QpState::kReset) return kErrState;
      qp.state_ = QpState::kInit;
      return kOk;
    case QpState::kRtr:
      if (qp.state_ != QpState::kInit) return kErrState;
      if (qp.type() == QpType::kRC) {
        if (registry_->find(dest.node) == nullptr) return kErrInvalid;
        qp.dest_ = dest;
      }
      qp.state_ = QpState::kRtr;
      return kOk;
    case QpState::kRts:
      if (qp.state_ != QpState::kRtr) return kErrState;
      qp.state_ = QpState::kRts;
      return kOk;
    case QpState::kError:
      qp_set_error(qp);
      return kOk;
  }
  return kErrInvalid;
}

void Nic::qp_set_error(QueuePair& qp) { qp_set_error(qp, engine_->now()); }

void Nic::qp_set_error(QueuePair& qp, sim::Time error_at) {
  if (qp.state_ == QpState::kError) return;
  qp.state_ = QpState::kError;
  qp.counters_.errors++;
  const sim::Time at = error_at + cfg_.cqe_write;
  // Coalesced flush: every flushed CQE shares one timestamp and the
  // registrations below used to be consecutive seq numbers from one
  // synchronous loop — no foreign event could interleave between them —
  // so folding them into a single engine event preserves the observable
  // CQ contents at every point in virtual time while cutting the flush
  // of a deep queue from O(depth) events to one.
  std::vector<std::pair<CompletionQueue*, Cqe>> flush;
  flush.reserve(qp.rq_.size() + qp.sq_.size());
  for (const RecvWr& rwr : qp.rq_) {
    flush.emplace_back(&qp.recv_cq(),
                       Cqe{rwr.wr_id, WcStatus::kWorkRequestFlushed,
                           WcOpcode::kRecv, 0, qp.qpn(), 0, 0, false});
  }
  qp.rq_.clear();
  for (const SendWr& swr : qp.sq_) {
    flush.emplace_back(&qp.send_cq(),
                       Cqe{swr.wr_id, WcStatus::kWorkRequestFlushed,
                           wc_opcode(swr.opcode), 0, qp.qpn(), 0, 0, false});
  }
  qp.sq_.clear();
  if (flush.empty()) return;
  counters_.cqe_flush_batches++;
  counters_.cqe_flushed += flush.size();
  engine_->call_at(at, [flush = std::move(flush)] {
    for (const auto& [cq, cqe] : flush) cq->push(cqe);
  });
}

int Nic::post_send(QueuePair& qp, SendWr wr) {
  if (qp.state_ != QpState::kRts) return kErrState;
  if (qp.sq_.size() + qp.sq_inflight_ >= qp.config().sq_depth) return kErrQueueFull;
  const bool is_atomic =
      wr.opcode == Opcode::kFetchAdd || wr.opcode == Opcode::kCompareSwap;
  if (qp.type() == QpType::kUD) {
    if (wr.opcode != Opcode::kSend && wr.opcode != Opcode::kSendWithImm)
      return kErrInvalid;
    if (wr.sge.length > cfg_.mtu) return kErrInvalid;
    if (registry_->find(wr.ud.node) == nullptr) return kErrInvalid;
  }
  if (is_atomic) {
    // Atomics operate on exactly 8 remote bytes, naturally aligned.
    if (wr.sge.length != 8 || wr.remote_addr % 8 != 0) return kErrInvalid;
    if (wr.inline_data) return kErrInvalid;
  }
  if (wr.inline_data) {
    if (wr.sge.length > qp.config().max_inline) return kErrInvalid;
    if (wr.opcode == Opcode::kRdmaRead) return kErrInvalid;
    wr.inline_payload.assign(mem(wr.sge.addr), mem(wr.sge.addr) + wr.sge.length);
  }
  if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
    tr->record(trace::Point::kWqePost, wr.trace_span, qp.qpn(), 0,
               static_cast<std::uint8_t>(node_), payload_len(wr));
  }
  const std::uint32_t span = wr.trace_span;
  qp.sq_.push_back(std::move(wr));
  kick(qp, span);
  return kOk;
}

int Nic::post_recv(QueuePair& qp, RecvWr wr) {
  if (qp.config().srq != nullptr) return kErrInvalid;  // use post_srq_recv
  if (qp.state_ == QpState::kReset || qp.state_ == QpState::kError)
    return kErrState;
  if (qp.rq_.size() >= qp.config().rq_depth) return kErrQueueFull;
  if (wr.sge.length > 0 &&
      mrs_.check_local(wr.sge, qp.pd(), /*needs_local_write=*/true) == nullptr) {
    return kErrInvalid;
  }
  qp.rq_.push_back(wr);
  return kOk;
}

void Nic::kick(QueuePair& qp, std::uint32_t trace_span) {
  if (qp.sq_worker_active_) {
    // The SQ worker is already draining this queue: the post rides the
    // in-flight burst and no doorbell write (or engine event) is modeled.
    counters_.doorbells_coalesced++;
    return;
  }
  counters_.doorbells++;
  qp.sq_worker_active_ = true;
  // The doorbell makes the device look up the QP context; if it is not
  // resident in the on-NIC ICM cache, the device stalls for a host-memory
  // fetch before it can schedule the SQ (the connection-count cliff).
  const sim::Time db = cfg_.doorbell_latency +
                       (icm_qp_.touch(qp.qpn()) ? 0 : cfg_.icm_miss_latency);
  if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
    tr->record(trace::Point::kDoorbell, trace_span, qp.qpn(), 0,
               static_cast<std::uint8_t>(node_), 0, db);
  }
  engine_->call_in(db, [this, qpn = qp.qpn()] {
    if (find_qp(qpn) != nullptr) {
      counters_.sq_bursts++;
      sq_resume(qpn);
    }
  });
}

void Nic::sq_resume(std::uint32_t qpn) {
  QueuePair* qp = find_qp(qpn);
  if (qp == nullptr) return;
  if (qp->state_ != QpState::kRts || qp->sq_.empty()) {
    qp->sq_worker_active_ = false;
    return;
  }
  if (engine_->tracer() != nullptr) [[unlikely]] {
    // Trace-fidelity drain: the per-WQE coroutine reserves and records at
    // the same virtual times, in the same event order, as the pre-fusion
    // worker — which is the order the canonical traces are committed in
    // (a single shard's trace buffer is the raw emission order, so fused
    // future-dated emission would break its time-sortedness).
    engine_->spawn(sq_worker(qpn));
  } else {
    sq_drain_burst(*qp);
  }
}

void Nic::sq_drain_burst(QueuePair& qp) {
  // Gather pass: SoA descriptor columns for every WQE queued right now.
  // WQEs stay in sq_ until their processing iteration so that a
  // mid-burst error flush (qp_set_error walks sq_) still sees them.
  burst_.clear();
  for (const SendWr& wr : qp.sq_) {
    burst_.opcode.push_back(static_cast<std::uint8_t>(wr.opcode));
    burst_.len.push_back(static_cast<std::uint32_t>(payload_len(wr)));
    burst_.addr.push_back(wr.sge.addr);
    burst_.sge_len.push_back(wr.sge.length);
    burst_.lkey.push_back(wr.sge.lkey);
    burst_.inline_or_empty.push_back(
        wr.inline_data || payload_len(wr) == 0 ? 1 : 0);
  }
  // Batched protection pass over the contiguous columns (one MR-table
  // probe per non-inline WQE, no WQE-sized strides).
  const std::size_t n = burst_.size();
  burst_.mr_ok.resize(n);
  const ProtectionDomainId pd = qp.pd();
  for (std::size_t i = 0; i < n; ++i) {
    const bool needs_local_write =
        burst_.opcode[i] == static_cast<std::uint8_t>(Opcode::kRdmaRead) ||
        burst_.opcode[i] == static_cast<std::uint8_t>(Opcode::kFetchAdd) ||
        burst_.opcode[i] == static_cast<std::uint8_t>(Opcode::kCompareSwap);
    burst_.mr_ok[i] =
        burst_.inline_or_empty[i] != 0 ||
        mrs_.check_local(Sge{burst_.addr[i], burst_.sge_len[i],
                             burst_.lkey[i]},
                         pd, needs_local_write) != nullptr;
  }
  // Processing pass, one event for the whole burst: WQE i's pipeline slot
  // is reserved when WQE i-1's is known, so slot k ends at the same
  // f_k = max(now, next_free) + k * wqe_processing the per-WQE worker
  // computed by waking at f_{k-1} — reserve_at's start is max(now,
  // earliest, next_free), and no foreign event can interleave inside this
  // event. Each WQE's downstream chain is reserved with earliest = f_k,
  // which equals the reservation the worker made at engine-time f_k for
  // the single-active-writer resources of the NIC model (the same
  // argument reserve_dst_chain documents).
  counters_.sq_fused_batches++;
  const std::uint32_t qpn = qp.qpn();
  sim::Time last = engine_->now();
  for (std::size_t i = 0; i < n; ++i) {
    // An error surfaced by WQE i-1 flushed the rest of the queue; the
    // continuation below deactivates the worker at the same virtual time
    // the per-WQE worker's loop check would have.
    if (qp.state_ != QpState::kRts || qp.sq_.empty()) break;
    SendWr wr = std::move(qp.sq_.front());
    qp.sq_.pop_front();
    qp.sq_inflight_++;
    counters_.sq_burst_wrs++;
    const bool mr_ok = burst_.mr_ok[i] != 0;
    // An ICM MR-context miss widens this WQE's pipeline slot: the fetch
    // stalls on the host-memory context read before parsing can start.
    const sim::Time fetch = wqe_fetch_cost(wr, mr_ok);
    last = processing_.reserve(fetch);
    process_one(qp, std::move(wr), 0, last, mr_ok, fetch);
  }
  // One continuation event at the burst's end: drains WQEs posted while
  // this burst was (virtually) processing, or deactivates — at exactly
  // the time the per-WQE worker would have woken to find the queue empty.
  engine_->call_at(last, [this, qpn] { sq_resume(qpn); });
}

sim::Task<> Nic::sq_worker(std::uint32_t qpn) {
  for (;;) {
    QueuePair* qp = find_qp(qpn);
    if (qp == nullptr) co_return;
    if (qp->state_ != QpState::kRts || qp->sq_.empty()) break;
    SendWr wr = std::move(qp->sq_.front());
    qp->sq_.pop_front();
    qp->sq_inflight_++;
    counters_.sq_burst_wrs++;
    // Protection verdict and ICM touch happen at fetch initiation, before
    // the pipeline slot — the same order (and therefore the same hit/miss
    // replay) as the fused drain's batched pass.
    const bool mr_ok = wqe_mr_ok(wr, qp->pd());
    const sim::Time fetch = wqe_fetch_cost(wr, mr_ok);
    const sim::Time at = co_await processing_.use(fetch);
    qp = find_qp(qpn);  // revalidate after suspension
    if (qp == nullptr) co_return;
    process_one(*qp, std::move(wr), 0, at, mr_ok, fetch);
  }
  if (QueuePair* qp = find_qp(qpn)) qp->sq_worker_active_ = false;
}

bool Nic::wqe_mr_ok(const SendWr& wr, ProtectionDomainId pd) const {
  if (wr.inline_data || payload_len(wr) == 0) return true;
  const bool needs_local_write = wr.opcode == Opcode::kRdmaRead ||
                                 wr.opcode == Opcode::kFetchAdd ||
                                 wr.opcode == Opcode::kCompareSwap;
  return mrs_.check_local(wr.sge, pd, needs_local_write) != nullptr;
}

sim::Time Nic::wqe_fetch_cost(const SendWr& wr, bool mr_ok) {
  // Inline/empty WQEs carry their payload (or none) in the descriptor and
  // reference no MR context; failed protection checks abort before any
  // context fetch.
  if (wr.inline_data || payload_len(wr) == 0 || !mr_ok) {
    return cfg_.wqe_processing;
  }
  return icm_mr_.touch(wr.sge.lkey)
             ? cfg_.wqe_processing
             : cfg_.wqe_processing + cfg_.icm_miss_latency;
}

void Nic::retry_send(std::uint32_t qpn, WrRef wr, std::uint32_t rnr_attempts) {
  QueuePair* qp = find_qp(qpn);
  if (qp == nullptr || qp->state_ != QpState::kRts) return;
  engine_->spawn([](Nic& nic, std::uint32_t qpn, WrRef wr,
                    std::uint32_t attempts) -> sim::Task<> {
    QueuePair* qp = nic.find_qp(qpn);
    if (qp == nullptr) co_return;
    // A retry re-fetches the WQE, so it re-touches the MR context too.
    const bool mr_ok = nic.wqe_mr_ok(*wr, qp->pd());
    const sim::Time fetch = nic.wqe_fetch_cost(*wr, mr_ok);
    const sim::Time at = co_await nic.processing_.use(fetch);
    qp = nic.find_qp(qpn);
    if (qp == nullptr) co_return;
    // The credit for this WR is still held; process_one does not take one.
    nic.process_one(*qp, std::move(*wr), attempts, at, mr_ok, fetch);
  }(*this, qpn, std::move(wr), rnr_attempts));
}

void Nic::retry_send_copy(std::uint32_t qpn, SendWr wr,
                          std::uint32_t rnr_attempts) {
  retry_send(qpn, wr_pool_.acquire(std::move(wr)), rnr_attempts);
}

Nic::SenderMeta Nic::meta_of(const SendWr& wr) {
  return SenderMeta{wr.wr_id, wr.trace_span,
                    static_cast<std::uint32_t>(payload_len(wr)), wr.opcode,
                    wr.signaled};
}

void Nic::post_remote(Nic& dst, sim::Time t, sim::InlineFn fn) {
  if (dst.engine_ == engine_) {
    engine_->call_at(t, std::move(fn));
  } else {
    counters_.cross_msgs++;
    engine_->cross_post(*dst.engine_, t, std::move(fn));
  }
}

sim::Time Nic::reserve_src_chunk(const fabric::Path& p, std::uint32_t chunk,
                                 std::uint32_t wire_bytes, bool skip_src_dma,
                                 sim::Time at) {
  // dma_latency is pipeline depth, not occupancy: reservations on the
  // shared DMA engine consume only the transfer time, and the fixed
  // latency shifts the readiness of every chunk afterwards. Folding the
  // latency into the reservation's earliest-start would spuriously
  // serialize unrelated messages (the engine would sit "reserved but
  // idle" for the latency window) — catastrophic on loopback paths where
  // source- and destination-side reservations share one engine.
  const sim::Time s =
      skip_src_dma
          ? at
          : dma_rd_.reserve_at(at, cfg_.pcie_bandwidth.time_for(chunk)) +
                cfg_.dma_latency;
  return p.reserve_src(s, wire_bytes);
}

std::vector<Nic::ChunkArrival> Nic::schedule_chain_src(Nic& dst,
                                                       std::uint64_t bytes,
                                                       bool skip_src_dma,
                                                       sim::Time at) {
  fabric::Path p = network_->path(node_, dst.node_);
  std::vector<ChunkArrival> out;
  out.reserve(chunk_count(bytes, cfg_.mtu));
  counters_.seg_msgs++;
  for_each_chunk(bytes, cfg_.mtu, [&](std::uint32_t chunk) {
    // Source-side segment only: on a routed path this is the uplink hops
    // bound to this shard; the arrival timestamp is the chunk crossing the
    // shard boundary (== delivery for a direct wire).
    const std::uint32_t wire = chunk + cfg_.header_bytes;
    const sim::Time w = reserve_src_chunk(p, chunk, wire, skip_src_dma, at);
    out.push_back(ChunkArrival{w, chunk, wire});
  });
  counters_.seg_chunks += out.size();
  return out;
}

Nic::TxTimes Nic::reserve_dst_chain(const fabric::Path& p,
                                    const std::vector<ChunkArrival>& chunks,
                                    bool include_dma) {
  // Runs at the first chunk's boundary-arrival time. A reservation with
  // earliest = chunk arrival made now is identical to the one the fused
  // schedule_chain made at source-process time whenever the destination
  // segment's resources have a single active writer (start = max(now,
  // earliest, next_free), and now <= every chunk arrival here) — which
  // holds for the request/response and streaming patterns of the test
  // topologies.
  TxTimes t{engine_->now(), engine_->now()};
  for (const ChunkArrival& c : chunks) {
    t.wire_done = p.reserve_dst(c.at, c.wire_bytes);
    t.delivered =
        include_dma
            ? dma_wr_.reserve_at(t.wire_done,
                                 cfg_.pcie_bandwidth.time_for(c.bytes)) +
                  cfg_.dma_latency
            : t.wire_done;
  }
  return t;
}

// One record per pipeline stage of a WQE's execution, future-dated from
// the reservation times schedule_chain computed. Only called with an
// active tracer.
void Nic::trace_chain(std::uint32_t qpn, const SendWr& wr, const TxTimes& t,
                      NodeId dst_node, std::uint64_t len, sim::Time at,
                      sim::Time fetch_cost) {
  trace::Tracer* tr = engine_->tracer();
  const auto node = static_cast<std::uint8_t>(node_);
  // `at` is the end of the reserved WQE-processing slot; back-dating the
  // fetch record by the slot width (which includes any ICM miss penalty)
  // plumbs the reservation into the trace (the causal analyzer reads
  // service time as record duration and closes the NIC scheduling stage
  // at t + dur == at).
  tr->record_at(at - fetch_cost, trace::Point::kWqeFetch,
                wr.trace_span, qpn, 0, node, len, fetch_cost);
  if (!wr.inline_data && len > 0) {
    tr->record_at(at, trace::Point::kDmaFetch, wr.trace_span, qpn, 0, node,
                  len, dma_fetch_time(len));
  }
  tr->record_at(at, trace::Point::kWireTx, wr.trace_span, qpn, 0, node, len,
                t.wire_done - at);
  if (t.delivered > t.wire_done) {
    tr->record_at(t.wire_done, trace::Point::kDmaDeliver, wr.trace_span, qpn,
                  0, static_cast<std::uint8_t>(dst_node), len,
                  t.delivered - t.wire_done);
  }
}

void Nic::trace_fetch(std::uint32_t qpn, const SendWr& wr, std::uint64_t len,
                      sim::Time fetch_cost) {
  trace::Tracer* tr = engine_->tracer();
  const auto node = static_cast<std::uint8_t>(node_);
  // Same reservation plumbing as trace_chain (runs at the end of the
  // processing slot), so cross-shard chains carry identical durations.
  const sim::Time at = engine_->now();
  tr->record_at(at - fetch_cost, trace::Point::kWqeFetch,
                wr.trace_span, qpn, 0, node, len, fetch_cost);
  if (!wr.inline_data && len > 0) {
    tr->record_at(at, trace::Point::kDmaFetch, wr.trace_span, qpn, 0, node,
                  len, dma_fetch_time(len));
  }
}

sim::Time Nic::dma_fetch_time(std::uint64_t len) const {
  // Summed PCIe occupancy of the payload's MTU chunks — the same
  // segmentation schedule_chain_src reserves, reproduced arithmetically
  // so fused and cross-shard paths trace identical service durations.
  sim::Time total = 0;
  for_each_chunk(len, cfg_.mtu, [&](std::uint32_t chunk) {
    total += cfg_.pcie_bandwidth.time_for(chunk);
  });
  return total;
}

void Nic::process_one(QueuePair& qp, SendWr wr, std::uint32_t rnr_attempts,
                      sim::Time at, bool mr_ok, sim::Time fetch_cost) {
  const std::uint64_t len = payload_len(wr);

  if (!mr_ok) {
    sender_complete(qp.qpn(), wr, WcStatus::kLocalProtectionError,
                    at + cfg_.cqe_write);
    qp_set_error(qp, at);
    return;
  }

  const bool is_ud = qp.type() == QpType::kUD;
  const AddressHandle dest = is_ud ? wr.ud : qp.dest_;
  Nic* dst = registry_->find(dest.node);
  if (dst == nullptr) {
    sender_complete(qp.qpn(), wr, WcStatus::kRemoteInvalidRequest,
                    at + cfg_.cqe_write);
    if (!is_ud) qp_set_error(qp, at);
    return;
  }

  if (rnr_attempts == 0) {
    counters_.tx_msgs++;
    counters_.tx_bytes += len;
    qp.counters_.tx_msgs++;
    qp.counters_.tx_bytes += len;
  }

  const std::uint32_t sqpn = qp.qpn();
  const bool cross = dst->engine_ != engine_;
  switch (wr.opcode) {
    case Opcode::kSend:
    case Opcode::kSendWithImm: {
      // UD always takes the boundary-split path, even on one engine: the
      // unreliable send completes at its local wire egress — the end of
      // the path's source-side segment, a topological point (the tier-
      // climbing prefix; see Path::src_hops) that does not depend on
      // shard placement — which keeps the completion time, and thus the
      // whole run, identical at every shard count. On a direct wire the
      // boundary IS the delivery, so two-host results are unchanged.
      if (cross || is_ud) {
        auto arrivals = schedule_chain_src(*dst, len, wr.inline_data, at);
        const sim::Time wire_done = arrivals.back().at;
        const sim::Time posted = at;
        if (engine_->tracer() != nullptr) [[unlikely]] {
          // kWireTx and kDmaDeliver are emitted by the destination, which
          // computes the true wire arrival past the boundary.
          trace_fetch(sqpn, wr, len, fetch_cost);
        }
        if (is_ud) {
          sender_complete(sqpn, wr, WcStatus::kSuccess,
                          wire_done + cfg_.cqe_write);
        }
        // Hoisted before the closure construction moves `arrivals` out
        // (function-argument evaluation order is unspecified).
        const sim::Time first_at = arrivals.front().at;
        post_remote(*dst, first_at,
                    sim::InlineFn([dst, dqpn = dest.qpn, self = this, sqpn,
                                   wrc = std::move(wr),
                                   arrivals = std::move(arrivals), posted,
                                   rnr_attempts, is_ud]() mutable {
                      dst->remote_send_arrival(dqpn, std::move(wrc),
                                               std::move(arrivals), *self,
                                               sqpn, posted, rnr_attempts,
                                               !is_ud);
                    }));
        break;
      }
      TxTimes t = schedule_chain(*dst, len, wr.inline_data,
                                 /*include_dst_dma=*/true, at);
      if (engine_->tracer() != nullptr) [[unlikely]] {
        trace_chain(sqpn, wr, t, dest.node, len, at, fetch_cost);
      }
      WrRef shared = wr_pool_.acquire(std::move(wr));
      engine_->call_at(t.wire_done,
                       [this, dst, dqpn = dest.qpn, shared, sqpn,
                        delivered = t.delivered, rnr_attempts] {
                         dst->handle_send_arrival(dqpn, shared, *this, sqpn,
                                                  delivered, rnr_attempts,
                                                  /*reliable=*/true);
                       });
      break;
    }
    case Opcode::kRdmaWrite:
    case Opcode::kRdmaWriteWithImm: {
      if (cross) {
        auto arrivals = schedule_chain_src(*dst, len, wr.inline_data, at);
        const sim::Time posted = at;
        if (engine_->tracer() != nullptr) [[unlikely]] {
          trace_fetch(sqpn, wr, len, fetch_cost);
        }
        const sim::Time first_at = arrivals.front().at;  // before the move
        post_remote(*dst, first_at,
                    sim::InlineFn([dst, dqpn = dest.qpn, self = this, sqpn,
                                   wrc = std::move(wr),
                                   arrivals = std::move(arrivals), posted,
                                   rnr_attempts]() mutable {
                      dst->remote_write_arrival(dqpn, std::move(wrc),
                                                std::move(arrivals), *self,
                                                sqpn, posted, rnr_attempts);
                    }));
        break;
      }
      TxTimes t = schedule_chain(*dst, len, wr.inline_data,
                                 /*include_dst_dma=*/true, at);
      if (engine_->tracer() != nullptr) [[unlikely]] {
        trace_chain(sqpn, wr, t, dest.node, len, at, fetch_cost);
      }
      WrRef shared = wr_pool_.acquire(std::move(wr));
      engine_->call_at(t.wire_done,
                       [this, dst, dqpn = dest.qpn, shared, sqpn,
                        delivered = t.delivered, rnr_attempts] {
                         dst->handle_write_arrival(dqpn, shared, *this, sqpn,
                                                   delivered, rnr_attempts);
                       });
      break;
    }
    case Opcode::kRdmaRead: {
      // Header-only read request towards the responder: it reserves only
      // the source-side segment (this shard's resources) and rides the
      // non-contending ctrl lane over the destination side, so the chain
      // itself is shard-safe; just the arrival dispatch may cross.
      fabric::Path rp = network_->path(node_, dst->node_);
      const sim::Time req_arrive =
          rp.reserve_src(at, cfg_.header_bytes) +
          rp.dst_latency(cfg_.header_bytes);
      TxTimes t{req_arrive, req_arrive};
      if (engine_->tracer() != nullptr) [[unlikely]] {
        trace_chain(sqpn, wr, t, dest.node, 0, at, fetch_cost);
      }
      if (cross) {
        post_remote(*dst, t.wire_done,
                    sim::InlineFn([dst, dqpn = dest.qpn, self = this, sqpn,
                                   wrc = std::move(wr)]() mutable {
                      WrRef local = dst->wr_pool_.acquire(std::move(wrc));
                      dst->handle_read_request(dqpn, local, *self, sqpn);
                    }));
        break;
      }
      WrRef shared = wr_pool_.acquire(std::move(wr));
      engine_->call_at(t.wire_done, [this, dst, dqpn = dest.qpn, shared, sqpn] {
        dst->handle_read_request(dqpn, shared, *this, sqpn);
      });
      break;
    }
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap: {
      // The request carries the operands (header-sized on the wire). Like
      // the read request: source-side reservation + ctrl-lane latency over
      // the destination side, identical in fused and split execution.
      fabric::Path rp = network_->path(node_, dst->node_);
      const sim::Time req_arrive =
          rp.reserve_src(at, cfg_.header_bytes) +
          rp.dst_latency(cfg_.header_bytes);
      TxTimes t{req_arrive, req_arrive};
      if (engine_->tracer() != nullptr) [[unlikely]] {
        trace_chain(sqpn, wr, t, dest.node, 0, at, fetch_cost);
      }
      if (cross) {
        post_remote(*dst, t.wire_done,
                    sim::InlineFn([dst, dqpn = dest.qpn, self = this, sqpn,
                                   wrc = std::move(wr)]() mutable {
                      WrRef local = dst->wr_pool_.acquire(std::move(wrc));
                      dst->handle_atomic_request(dqpn, local, *self, sqpn);
                    }));
        break;
      }
      WrRef shared = wr_pool_.acquire(std::move(wr));
      engine_->call_at(t.wire_done, [this, dst, dqpn = dest.qpn, shared, sqpn] {
        dst->handle_atomic_request(dqpn, shared, *this, sqpn);
      });
      break;
    }
  }
}

void Nic::remote_send_arrival(std::uint32_t local_qpn, SendWr wr,
                              std::vector<ChunkArrival> arrivals, Nic& src,
                              std::uint32_t src_qpn, sim::Time posted,
                              std::uint32_t rnr_attempts, bool reliable) {
  const fabric::Path p = network_->path(src.node(), node_);
  const auto [wire_done, delivered] =
      reserve_dst_chain(p, arrivals, /*include_dma=*/true);
  if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
    // The kWireTx record mirrors the fused path's byte-for-byte: dated at
    // the source's post time, on the source node, spanning the full wire
    // crossing — only this shard knows where the crossing ends.
    tr->record_at(posted, trace::Point::kWireTx, wr.trace_span, src_qpn, 0,
                  static_cast<std::uint8_t>(src.node()), payload_len(wr),
                  wire_done - posted);
    if (delivered > wire_done) {
      tr->record_at(wire_done, trace::Point::kDmaDeliver, wr.trace_span,
                    src_qpn, 0, static_cast<std::uint8_t>(node_),
                    payload_len(wr), delivered - wire_done);
    }
  }
  WrRef shared = wr_pool_.acquire(std::move(wr));
  engine_->call_at(wire_done, [this, local_qpn, shared, &src, src_qpn,
                               delivered, rnr_attempts, reliable] {
    handle_send_arrival(local_qpn, shared, src, src_qpn, delivered,
                        rnr_attempts, reliable);
  });
}

void Nic::remote_write_arrival(std::uint32_t local_qpn, SendWr wr,
                               std::vector<ChunkArrival> arrivals, Nic& src,
                               std::uint32_t src_qpn, sim::Time posted,
                               std::uint32_t rnr_attempts) {
  const fabric::Path p = network_->path(src.node(), node_);
  const auto [wire_done, delivered] =
      reserve_dst_chain(p, arrivals, /*include_dma=*/true);
  if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
    tr->record_at(posted, trace::Point::kWireTx, wr.trace_span, src_qpn, 0,
                  static_cast<std::uint8_t>(src.node()), payload_len(wr),
                  wire_done - posted);
    if (delivered > wire_done) {
      tr->record_at(wire_done, trace::Point::kDmaDeliver, wr.trace_span,
                    src_qpn, 0, static_cast<std::uint8_t>(node_),
                    payload_len(wr), delivered - wire_done);
    }
  }
  WrRef shared = wr_pool_.acquire(std::move(wr));
  engine_->call_at(wire_done, [this, local_qpn, shared, &src, src_qpn,
                               delivered, rnr_attempts] {
    handle_write_arrival(local_qpn, shared, src, src_qpn, delivered,
                         rnr_attempts);
  });
}

void Nic::handle_atomic_request(std::uint32_t local_qpn, WrRef wr,
                                Nic& src, std::uint32_t src_qpn) {
  QueuePair* qp = find_qp(local_qpn);
  auto nak = [&](WcStatus status) {
    send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr), status] {
      src.sender_complete(src_qpn, m, status,
                          src.engine_->now() + src.cfg_.cqe_write);
      if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
    });
  };
  if (qp == nullptr || qp->state_ == QpState::kError ||
      qp->state_ == QpState::kReset || qp->state_ == QpState::kInit) {
    nak(WcStatus::kRemoteInvalidRequest);
    return;
  }
  if (mrs_.check_remote(wr->rkey, wr->remote_addr, 8, kAccessRemoteAtomic) ==
      nullptr) {
    nak(WcStatus::kRemoteAccessError);
    return;
  }
  // Atomics serialize on the responder's processing pipeline; the
  // read-modify-write happens here, atomically with respect to all other
  // simulated accesses (single-threaded event execution).
  const sim::Time done = processing_.reserve(cfg_.rx_processing);
  std::uint64_t old_value;
  std::memcpy(&old_value, mem(wr->remote_addr), 8);
  std::uint64_t new_value = old_value;
  if (wr->opcode == Opcode::kFetchAdd) {
    new_value = old_value + wr->compare_add;
  } else if (old_value == wr->compare_add) {
    new_value = wr->swap;
  }
  std::memcpy(mem(wr->remote_addr), &new_value, 8);
  counters_.rx_msgs++;
  // Response carries the old value back; the requester DMA-writes it into
  // the caller's 8-byte buffer and completes.
  // The requester-side memcpy + completion run on the requester's shard
  // (post_remote); everything they need travels as plain data.
  engine_->call_at(done, [this, wr, old_value, &src, src_qpn] {
    fabric::Path p = network_->path(node_, src.node());
    const sim::Time arrive =
        p.reserve_src(engine_->now(), cfg_.ack_bytes + 8) +
        p.dst_latency(cfg_.ack_bytes + 8);
    post_remote(src, arrive,
                sim::InlineFn([psrc = &src, src_qpn, m = meta_of(*wr),
                               addr = wr->sge.addr, old_value] {
                  std::memcpy(mem(addr), &old_value, 8);
                  psrc->sender_complete(src_qpn, m, WcStatus::kSuccess,
                                        psrc->engine_->now() +
                                            psrc->cfg_.ack_processing +
                                            psrc->cfg_.cqe_write);
                }));
  });
}

void Nic::handle_send_arrival(std::uint32_t local_qpn, WrRef wr,
                              Nic& src, std::uint32_t src_qpn, sim::Time delivered,
                              std::uint32_t rnr_attempts, bool reliable) {
  QueuePair* qp = find_qp(local_qpn);
  const std::uint64_t len = payload_len(*wr);
  if (qp == nullptr || qp->state_ == QpState::kError ||
      qp->state_ == QpState::kReset || qp->state_ == QpState::kInit) {
    if (reliable) {
      send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr)] {
        src.sender_complete(src_qpn, m, WcStatus::kRemoteInvalidRequest,
                            src.engine_->now() + src.cfg_.cqe_write);
        if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
      });
    }
    return;  // UD: silently dropped
  }

  const bool is_ud = qp->type() == QpType::kUD;
  SharedReceiveQueue* srq = qp->config().srq;
  std::deque<RecvWr>& rq = srq != nullptr ? srq->wqes_ : qp->rq_;
  if (rq.empty()) {
    qp->counters_.rnr_events++;
    if (!reliable) return;  // UD: datagram dropped
    if (rnr_attempts + 1 >= src.cfg_.rnr_retries) {
      send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr)] {
        src.sender_complete(src_qpn, m, WcStatus::kRnrRetryExceeded,
                            src.engine_->now() + src.cfg_.cqe_write);
        if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
      });
    } else {
      // The WR travels back by value: the retry re-enters the sender's
      // pool on the sender's shard (WrRefs must not cross threads).
      send_ctrl(src, engine_->now(),
                [&src, src_qpn, wrc = SendWr(*wr), rnr_attempts]() mutable {
                  src.engine_->call_in(
                      src.cfg_.rnr_timer,
                      [&src, src_qpn, wrc = std::move(wrc),
                       rnr_attempts]() mutable {
                        src.retry_send_copy(src_qpn, std::move(wrc),
                                            rnr_attempts + 1);
                      });
                });
    }
    return;
  }

  RecvWr rwr = rq.front();
  rq.pop_front();
  if (srq != nullptr) srq->consumed_++;
  const std::uint64_t needed = len + (is_ud ? kGrhBytes : 0);
  if (needed > rwr.sge.length) {
    complete_at(engine_->now() + cfg_.cqe_write, qp->recv_cq(),
                Cqe{rwr.wr_id, WcStatus::kLocalLengthError, WcOpcode::kRecv, 0,
                    local_qpn, src_qpn, 0, false});
    qp_set_error(*qp);
    if (reliable) {
      send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr)] {
        src.sender_complete(src_qpn, m, WcStatus::kRemoteInvalidRequest,
                            src.engine_->now() + src.cfg_.cqe_write);
        if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
      });
    }
    return;
  }

  const sim::Time done = std::max(engine_->now(), delivered) + cfg_.rx_processing;
  engine_->call_at(done, [this, local_qpn, wr, rwr, len, needed, &src, src_qpn,
                          is_ud, reliable] {
    QueuePair* qp = find_qp(local_qpn);
    if (qp == nullptr) return;
    if (len > 0) {
      std::byte* dst_ptr = mem(rwr.sge.addr) + (is_ud ? kGrhBytes : 0);
      std::memcpy(dst_ptr, payload_ptr(*wr), len);
    }
    counters_.rx_msgs++;
    counters_.rx_bytes += len;
    qp->counters_.rx_msgs++;
    qp->counters_.rx_bytes += len;
    const bool has_imm = wr->opcode == Opcode::kSendWithImm;
    complete_at(engine_->now() + cfg_.cqe_write, qp->recv_cq(),
                Cqe{rwr.wr_id, WcStatus::kSuccess, WcOpcode::kRecv,
                    static_cast<std::uint32_t>(needed), local_qpn, src_qpn,
                    wr->imm, has_imm});
    if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
      tr->record_at(engine_->now() + cfg_.cqe_write, trace::Point::kCompletion,
                    wr->trace_span, local_qpn, 0,
                    static_cast<std::uint8_t>(node_), len, 0, /*aux=*/1);
    }
    if (reliable) ctrl_complete(src, engine_->now(), src_qpn, meta_of(*wr));
  });
}

void Nic::handle_write_arrival(std::uint32_t local_qpn, WrRef wr,
                               Nic& src, std::uint32_t src_qpn, sim::Time delivered,
                               std::uint32_t rnr_attempts) {
  QueuePair* qp = find_qp(local_qpn);
  const std::uint64_t len = payload_len(*wr);
  auto nak = [&](WcStatus status) {
    send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr), status] {
      src.sender_complete(src_qpn, m, status,
                          src.engine_->now() + src.cfg_.cqe_write);
      if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
    });
  };
  if (qp == nullptr || qp->state_ == QpState::kError ||
      qp->state_ == QpState::kReset || qp->state_ == QpState::kInit) {
    nak(WcStatus::kRemoteInvalidRequest);
    return;
  }
  if (mrs_.check_remote(wr->rkey, wr->remote_addr, len, kAccessRemoteWrite) ==
      nullptr) {
    nak(WcStatus::kRemoteAccessError);
    return;
  }
  const bool has_imm = wr->opcode == Opcode::kRdmaWriteWithImm;
  RecvWr rwr;
  if (has_imm) {
    if (qp->rq_.empty()) {
      qp->counters_.rnr_events++;
      if (rnr_attempts + 1 >= src.cfg_.rnr_retries) {
        nak(WcStatus::kRnrRetryExceeded);
      } else {
        send_ctrl(src, engine_->now(),
                  [&src, src_qpn, wrc = SendWr(*wr), rnr_attempts]() mutable {
                    src.engine_->call_in(
                        src.cfg_.rnr_timer,
                        [&src, src_qpn, wrc = std::move(wrc),
                         rnr_attempts]() mutable {
                          src.retry_send_copy(src_qpn, std::move(wrc),
                                              rnr_attempts + 1);
                        });
                  });
      }
      return;
    }
    rwr = qp->rq_.front();
    qp->rq_.pop_front();
  }

  const sim::Time done = std::max(engine_->now(), delivered) + cfg_.rx_processing;
  engine_->call_at(done, [this, local_qpn, wr, rwr, len, &src, src_qpn, has_imm] {
    QueuePair* qp = find_qp(local_qpn);
    if (qp == nullptr) return;
    if (len > 0) std::memcpy(mem(wr->remote_addr), payload_ptr(*wr), len);
    counters_.rx_msgs++;
    counters_.rx_bytes += len;
    qp->counters_.rx_msgs++;
    qp->counters_.rx_bytes += len;
    if (has_imm) {
      complete_at(engine_->now() + cfg_.cqe_write, qp->recv_cq(),
                  Cqe{rwr.wr_id, WcStatus::kSuccess, WcOpcode::kRecvRdmaWithImm,
                      static_cast<std::uint32_t>(len), local_qpn, src_qpn,
                      wr->imm, true});
    }
    ctrl_complete(src, engine_->now(), src_qpn, meta_of(*wr));
  });
}

void Nic::handle_read_request(std::uint32_t local_qpn, WrRef wr,
                              Nic& src, std::uint32_t src_qpn) {
  QueuePair* qp = find_qp(local_qpn);
  const std::uint64_t len = wr->sge.length;
  auto nak = [&](WcStatus status) {
    send_ctrl(src, engine_->now(), [&src, src_qpn, m = meta_of(*wr), status] {
      src.sender_complete(src_qpn, m, status,
                          src.engine_->now() + src.cfg_.cqe_write);
      if (QueuePair* sqp = src.find_qp(src_qpn)) src.qp_set_error(*sqp);
    });
  };
  if (qp == nullptr || qp->state_ == QpState::kError ||
      qp->state_ == QpState::kReset || qp->state_ == QpState::kInit) {
    nak(WcStatus::kRemoteInvalidRequest);
    return;
  }
  if (mrs_.check_remote(wr->rkey, wr->remote_addr, len, kAccessRemoteRead) ==
      nullptr) {
    nak(WcStatus::kRemoteAccessError);
    return;
  }
  // Responder streams the data back; charge responder-side processing.
  processing_.reserve(cfg_.rx_processing);
  counters_.rx_msgs++;  // the read request itself
  if (src.engine_ != engine_) {
    // Cross-shard requester: reserve the responder-side half of the chain
    // here, ship the payload + per-chunk arrivals across, and let the
    // requester finish its DMA-write reservations and the memcpy on its
    // own shard. The payload is snapshotted at response time rather than
    // at delivery time — indistinguishable unless the responder mutates
    // the region mid-flight (which the verbs contract already forbids for
    // concurrently read regions).
    auto arrivals =
        schedule_chain_src(src, len, /*skip_src_dma=*/false, engine_->now());
    counters_.tx_bytes += len;
    std::vector<std::byte> data(len);
    if (len > 0) std::memcpy(data.data(), mem(wr->remote_addr), len);
    const sim::Time first_at = arrivals.front().at;  // before the move
    post_remote(src, first_at,
                sim::InlineFn([psrc = &src, src_qpn, m = meta_of(*wr),
                               addr = wr->sge.addr, len, responder = node_,
                               arrivals = std::move(arrivals),
                               data = std::move(data)]() mutable {
                  psrc->remote_read_response(src_qpn, m, addr, len, responder,
                                             std::move(arrivals),
                                             std::move(data));
                }));
    return;
  }
  TxTimes t = schedule_chain(src, len, /*skip_src_dma=*/false,
                             /*include_dst_dma=*/true, engine_->now());
  counters_.tx_bytes += len;
  engine_->call_at(t.delivered, [this, wr, len, &src, src_qpn] {
    if (len > 0)
      std::memcpy(mem(wr->sge.addr), mem(wr->remote_addr), len);
    src.counters_.rx_bytes += len;
    src.sender_complete(src_qpn, *wr, WcStatus::kSuccess,
                        src.engine_->now() + src.cfg_.ack_processing +
                            src.cfg_.cqe_write);
  });
}

void Nic::remote_read_response(std::uint32_t qpn, SenderMeta m,
                               std::uintptr_t addr, std::uint64_t len,
                               NodeId responder,
                               std::vector<ChunkArrival> arrivals,
                               std::vector<std::byte> data) {
  const fabric::Path p = network_->path(responder, node_);
  const sim::Time delivered =
      reserve_dst_chain(p, arrivals, /*include_dma=*/true).delivered;
  engine_->call_at(delivered, [this, qpn, m, addr, len,
                               data = std::move(data)] {
    if (len > 0) std::memcpy(mem(addr), data.data(), len);
    counters_.rx_bytes += len;
    sender_complete(qpn, m, WcStatus::kSuccess,
                    engine_->now() + cfg_.ack_processing + cfg_.cqe_write);
  });
}

void Nic::send_ctrl(Nic& dst, sim::Time earliest, sim::InlineFn fn) {
  // The ctrl packet serializes on the path's source-side segment (always
  // shard-local) and rides a non-contending priority lane over the
  // destination side (dst_latency). The segment split is topological
  // (Path::src_hops is placement-independent), so fused and split runs
  // reserve the same hops and apply the same latency formula to the same
  // suffix — ctrl packets never contend on destination-side downlinks in
  // either mode, and the two stay bit-identical even under converging
  // traffic. Only the arrival callback may cross shards, so callers must
  // capture nothing but plain data and `dst`-side state in `fn`.
  fabric::Path p = network_->path(node_, dst.node());
  const sim::Time arrive = p.reserve_src(earliest, cfg_.ack_bytes) +
                           p.dst_latency(cfg_.ack_bytes);
  post_remote(dst, arrive + dst.cfg_.ack_processing, std::move(fn));
}

Nic::TxTimes Nic::schedule_chain(Nic& dst, std::uint64_t bytes, bool skip_src_dma,
                                 bool include_dst_dma, sim::Time at) {
  fabric::Path p = network_->path(node_, dst.node_);
  TxTimes t{at, at};
  counters_.seg_msgs++;
  counters_.seg_chunks += chunk_count(bytes, cfg_.mtu);
  for_each_chunk(bytes, cfg_.mtu, [&](std::uint32_t chunk) {
    // Store-and-forward over the routed path: source-side hops, then
    // destination-side hops — the same reservations, in the same order,
    // that the split schedule_chain_src + reserve_dst_chain pair makes.
    const std::uint32_t wire = chunk + cfg_.header_bytes;
    const sim::Time boundary =
        reserve_src_chunk(p, chunk, wire, skip_src_dma, at);
    t.wire_done = p.reserve_dst(boundary, wire);
    t.delivered =
        include_dst_dma
            ? dst.dma_wr_.reserve_at(t.wire_done,
                                     dst.cfg_.pcie_bandwidth.time_for(chunk)) +
                  dst.cfg_.dma_latency
            : t.wire_done;
  });
  return t;
}

void Nic::complete_at(sim::Time at, CompletionQueue& cq, Cqe cqe) {
  engine_->call_at(at, [&cq, cqe] { cq.push(cqe); });
}

void Nic::sender_complete(std::uint32_t qpn, const SenderMeta& m, WcStatus status,
                          sim::Time at) {
  engine_->call_at(std::max(engine_->now(), at), [this, qpn, m, status] {
    sender_complete_now(qpn, m, status);
  });
}

void Nic::sender_complete_now(std::uint32_t qpn, const SenderMeta& m,
                              WcStatus status) {
  QueuePair* qp = find_qp(qpn);
  if (qp == nullptr) return;
  if (qp->sq_inflight_ > 0) qp->sq_inflight_--;
  if (m.signaled || status != WcStatus::kSuccess) {
    qp->send_cq().push(
        Cqe{m.wr_id, status, wc_opcode(m.opcode), m.payload_len, qpn, 0, 0,
            false});
  }
  if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
    tr->record(trace::Point::kCompletion, m.trace_span, qpn, 0,
               static_cast<std::uint8_t>(node_),
               static_cast<std::uint8_t>(status), 0,
               /*aux=*/0);
  }
}

void Nic::ctrl_complete(Nic& requester, sim::Time earliest,
                        std::uint32_t requester_qpn, SenderMeta m) {
  // Same wire/priority-lane model as send_ctrl; the callback lands one
  // cqe_write later and executes the completion directly, so a successful
  // ACK costs one requester-side event instead of two.
  fabric::Path p = network_->path(node_, requester.node());
  const sim::Time arrive = p.reserve_src(earliest, cfg_.ack_bytes) +
                           p.dst_latency(cfg_.ack_bytes);
  post_remote(requester,
              arrive + requester.cfg_.ack_processing + requester.cfg_.cqe_write,
              sim::InlineFn([req = &requester, requester_qpn, m] {
                req->sender_complete_now(requester_qpn, m,
                                         WcStatus::kSuccess);
              }));
}

}  // namespace cord::nic
