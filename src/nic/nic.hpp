// The simulated RDMA NIC (ConnectX-class device model).
//
// The NIC owns the protection/registration table, queue pairs and
// completion queues of one host, executes work requests with a calibrated
// cost model (WQE processing, PCIe DMA, wire serialization, ACKs), and
// moves real bytes between registered buffers. It knows nothing about
// kernel bypass vs CoRD: both the user-level driver (bypass) and the
// kernel-level driver (CoRD) drive the same `post_send`/`post_recv`/
// `ring_doorbell` interface — which is exactly the paper's point that the
// two drivers are "largely equivalent, thereby ensuring a lightweight and
// transparently interchangeable layer".
//
// Timing model: a message is pipelined at MTU granularity through three
// FIFO resources — source PCIe DMA, wire direction, destination PCIe
// DMA — using future-dated reservations, so both latency (pipelined) and
// bandwidth (occupancy) are captured without per-packet events.
//
// Documented simplifications vs real RC:
//  * On an RNR NAK only the affected WQE retries; later WQEs are not
//    rolled back. Workloads in this repo pre-post receives, so RNR is an
//    error-handling path, not a steady-state one.
//  * post_recv validates the SGE eagerly (returns EINVAL) instead of
//    failing at message arrival.
//  * Non-inline payloads are copied out of the source buffer at delivery
//    time; applications must keep buffers stable until completion (the
//    same contract real verbs applications obey).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/link.hpp"
#include "nic/config.hpp"
#include "nic/cq.hpp"
#include "nic/icm.hpp"
#include "nic/mr.hpp"
#include "nic/qp.hpp"
#include "nic/types.hpp"
#include "nic/wr_pool.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/resource.hpp"
#include "sim/slab.hpp"

namespace cord::nic {

class Nic;

/// Maps fabric node ids to NIC instances (the "subnet"). Node ids are
/// small and dense, so this is a flat vector — `find` is one bounds check
/// and an indexed load on the per-message path.
class NicRegistry {
 public:
  void add(Nic& nic);
  Nic* find(NodeId id) const {
    return id < nics_.size() ? nics_[id] : nullptr;
  }

 private:
  std::vector<Nic*> nics_;
};

/// Error codes returned by the post verbs (negative errno convention).
inline constexpr int kOk = 0;
inline constexpr int kErrInvalid = -22;   // EINVAL
inline constexpr int kErrQueueFull = -105;  // ENOBUFS
inline constexpr int kErrState = -107;    // ENOTCONN

struct NicCounters {
  std::uint64_t tx_msgs = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_msgs = 0;
  std::uint64_t rx_bytes = 0;
  // Doorbell/completion batching (see kick/sq_worker/qp_set_error):
  std::uint64_t doorbells = 0;  ///< modeled MMIO doorbell writes
  std::uint64_t doorbells_coalesced = 0;  ///< posts absorbed by an active SQ worker
  std::uint64_t sq_bursts = 0;      ///< SQ worker activations (one per doorbell)
  std::uint64_t sq_burst_wrs = 0;   ///< WRs drained across all activations
  /// Fused SoA drain events: each processed a whole burst of WQEs
  /// (gather → batched MR check → per-WQE segmentation) in one engine
  /// event. Stays 0 when a tracer forces the per-WQE drain path.
  std::uint64_t sq_fused_batches = 0;
  std::uint64_t seg_msgs = 0;    ///< messages run through MTU segmentation
  std::uint64_t seg_chunks = 0;  ///< MTU chunks those messages produced
  std::uint64_t cqe_flush_batches = 0;  ///< coalesced error-flush events
  std::uint64_t cqe_flushed = 0;        ///< CQEs delivered by those events
  /// Messages that crossed a shard boundary (0 on a single-engine run).
  std::uint64_t cross_msgs = 0;
};

class Nic {
 public:
  Nic(sim::Engine& engine, fabric::Network& network, NicRegistry& registry,
      NodeId node, const NicConfig& cfg);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  NodeId node() const { return node_; }
  const NicConfig& config() const { return cfg_; }
  sim::Engine& engine() { return *engine_; }
  const NicCounters& counters() const { return counters_; }

  // --- Control plane (reached through the kernel's ioctl path) ---------
  ProtectionDomainId alloc_pd() { return next_pd_++; }
  const MemoryRegion& register_mr(ProtectionDomainId pd, void* addr,
                                  std::size_t length, std::uint32_t access) {
    return mrs_.register_mr(pd, reinterpret_cast<std::uintptr_t>(addr), length, access);
  }
  bool deregister_mr(std::uint32_t lkey) {
    icm_mr_.erase(lkey);  // lkeys are recycled; a stale hit would be wrong
    return mrs_.deregister_mr(lkey);
  }

  CompletionQueue* create_cq(std::uint32_t capacity);
  QueuePair* create_qp(const QpConfig& cfg);
  void destroy_qp(std::uint32_t qpn);
  /// O(1): qpn/cqn/srqn are allocated sequentially, so lookups index a
  /// dense table (destroyed entries leave null holes).
  QueuePair* find_qp(std::uint32_t qpn) const {
    const std::uint32_t idx = qpn - kFirstQpn;  // wraps for qpn < kFirstQpn
    return idx < qps_.size() ? qps_[idx].get() : nullptr;
  }
  SharedReceiveQueue* create_srq(ProtectionDomainId pd, std::uint32_t capacity);

  /// State transitions; `dest` is required for the RTR transition of RC.
  int modify_qp(QueuePair& qp, QpState target, AddressHandle dest = {});

  /// Force a QP into the error state, flushing outstanding work requests
  /// (used by the kernel to revoke a connection — an OS-control feature).
  void qp_set_error(QueuePair& qp);
  /// As above, with the error surfacing at virtual time `at` (>= now):
  /// the fused burst drain detects errors at a WQE's computed processing
  /// time, which may lie ahead of the event that computed it.
  void qp_set_error(QueuePair& qp, sim::Time at);

  // --- Data plane (reached directly in bypass mode, via syscall in CoRD)
  int post_send(QueuePair& qp, SendWr wr);
  int post_recv(QueuePair& qp, RecvWr wr);
  int post_srq_recv(SharedReceiveQueue& srq, RecvWr wr);

  const MrTable& mr_table() const { return mrs_; }

  /// On-NIC context caches (ICM model, nic/icm.hpp). Disabled (unbounded)
  /// unless NicConfig bounds them; stats feed the `nic.icm.*` gauges.
  const IcmCache& icm_qp_cache() const { return icm_qp_; }
  const IcmCache& icm_mr_cache() const { return icm_mr_; }

 private:
  friend class NicRegistry;

  struct TxTimes {
    sim::Time wire_done = 0;  // last byte arrived at the destination NIC
    sim::Time delivered = 0;  // last byte written to destination memory
  };

  /// The subset of a SendWr that sender-side completion reads. Plain data:
  /// safe to carry across shard threads, unlike WrRef (whose intrusive
  /// refcount is deliberately non-atomic — WrRefs never leave their shard).
  struct SenderMeta {
    std::uint64_t wr_id = 0;
    std::uint32_t trace_span = 0;
    std::uint32_t payload_len = 0;
    Opcode opcode = Opcode::kSend;
    bool signaled = false;
  };
  static SenderMeta meta_of(const SendWr& wr);

  /// One MTU chunk crossing the path's shard boundary: for a direct wire,
  /// arrival at the destination NIC; for a routed path, the instant it
  /// clears the last source-side hop. The source shard computes these from
  /// its own (local) DMA-fetch + uplink reservations; the destination
  /// shard replays its downlink + DMA-write reservations from them with
  /// the same timestamps the fused schedule_chain would have produced.
  struct ChunkArrival {
    sim::Time at = 0;
    std::uint32_t bytes = 0;  ///< payload bytes (sizes the dst DMA write)
    /// Bytes on the wire: payload plus the *sender's* per-packet header.
    /// Carried with the chunk so the destination shard replays the
    /// suffix-hop reservations with the same wire size the fused
    /// schedule_chain uses — with heterogeneous per-NIC header_bytes the
    /// receiver's config would differ.
    std::uint32_t wire_bytes = 0;
  };

  static std::byte* mem(std::uintptr_t addr) {
    return reinterpret_cast<std::byte*>(addr);
  }

  /// Reserve the pipelined resource chain for `bytes` towards `dst`
  /// (same-shard destinations only: touches dst.dma_wr_ directly). `at`
  /// is the WQE's processing-done time: >= now, and ahead of now when the
  /// fused burst drain reserves a whole burst from one event.
  TxTimes schedule_chain(Nic& dst, std::uint64_t bytes, bool skip_src_dma,
                         bool include_dst_dma, sim::Time at);
  /// Source half of schedule_chain for a cross-shard `dst`: reserves the
  /// local DMA fetch + the path's source-side hops, returns per-chunk
  /// boundary arrivals for the destination shard to finish via
  /// reserve_dst_chain.
  std::vector<ChunkArrival> schedule_chain_src(Nic& dst, std::uint64_t bytes,
                                               bool skip_src_dma, sim::Time at);
  /// One chunk of the source-side chain: DMA fetch (unless inline) then
  /// the path's source-side hops, earliest-started at `at`.
  sim::Time reserve_src_chunk(const fabric::Path& p, std::uint32_t chunk,
                              std::uint32_t wire_bytes, bool skip_src_dma,
                              sim::Time at);
  /// Destination half: replays the destination-side hop (+ optionally
  /// DMA-write) reservations of schedule_chain from the boundary arrivals
  /// (called at the first chunk's arrival time). `p` is the forward path
  /// the chunks traveled (src towards this NIC).
  TxTimes reserve_dst_chain(const fabric::Path& p,
                            const std::vector<ChunkArrival>& chunks,
                            bool include_dma);

  /// Run `fn` at `t` on dst's engine: plain call_at when dst shares this
  /// NIC's engine (byte-identical to the pre-sharding code path), a
  /// mailbox-routed cross_post otherwise.
  void post_remote(Nic& dst, sim::Time t, sim::InlineFn fn);

  void kick(QueuePair& qp, std::uint32_t trace_span = 0);
  /// One drain round: dispatches to the fused SoA burst drain, or (with a
  /// tracer attached) to the per-WQE coroutine worker whose event-per-WQE
  /// structure the canonical traces were recorded against.
  void sq_resume(std::uint32_t qpn);
  /// Fused drain: gathers the queued WQE descriptors into the SoA burst
  /// scratch, batch-checks MRs, then processes every WQE from this one
  /// event — each WQE's chain reserved at its computed processing-done
  /// time. Schedules one continuation event at the burst's end.
  void sq_drain_burst(QueuePair& qp);
  sim::Task<> sq_worker(std::uint32_t qpn);
  /// Local protection check a WQE must pass before transmission (inline
  /// and zero-length payloads skip the MR lookup).
  bool wqe_mr_ok(const SendWr& wr, ProtectionDomainId pd) const;
  /// ICM charge for one WQE fetch: base wqe_processing plus the MR-context
  /// miss penalty when the WQE references a memory region (non-inline,
  /// non-empty, protection-checked). Mutates icm_mr_ — call exactly once
  /// per fetch, in queue order, so fused and per-WQE drains replay the
  /// same hit/miss sequence.
  sim::Time wqe_fetch_cost(const SendWr& wr, bool mr_ok);
  /// Execute one WQE whose processing pipeline slot ends at `at` (== now
  /// on the per-WQE paths; ahead of now from the fused drain). `mr_ok` is
  /// the (possibly batch-computed) wqe_mr_ok verdict; `fetch_cost` the
  /// reserved slot width (wqe_fetch_cost), plumbed through so the trace
  /// records carry the true reservation.
  void process_one(QueuePair& qp, SendWr wr, std::uint32_t rnr_attempts,
                   sim::Time at, bool mr_ok, sim::Time fetch_cost);
  void retry_send(std::uint32_t qpn, WrRef wr, std::uint32_t rnr_attempts);
  /// Cross-shard RNR retry entry: the WR came back by value; re-pool it
  /// locally and retry.
  void retry_send_copy(std::uint32_t qpn, SendWr wr, std::uint32_t rnr_attempts);

  void handle_send_arrival(std::uint32_t local_qpn, WrRef wr,
                           Nic& src, std::uint32_t src_qpn, sim::Time delivered,
                           std::uint32_t rnr_attempts, bool reliable);
  void handle_write_arrival(std::uint32_t local_qpn, WrRef wr,
                            Nic& src, std::uint32_t src_qpn, sim::Time delivered,
                            std::uint32_t rnr_attempts);
  void handle_read_request(std::uint32_t local_qpn, WrRef wr,
                           Nic& src, std::uint32_t src_qpn);
  void handle_atomic_request(std::uint32_t local_qpn, WrRef wr,
                             Nic& src, std::uint32_t src_qpn);

  // Cross-shard entry points (run on this NIC's shard; the WR arrives by
  // value and is re-pooled locally before entering the handlers above).
  void remote_send_arrival(std::uint32_t local_qpn, SendWr wr,
                           std::vector<ChunkArrival> arrivals, Nic& src,
                           std::uint32_t src_qpn, sim::Time posted,
                           std::uint32_t rnr_attempts, bool reliable);
  void remote_write_arrival(std::uint32_t local_qpn, SendWr wr,
                            std::vector<ChunkArrival> arrivals, Nic& src,
                            std::uint32_t src_qpn, sim::Time posted,
                            std::uint32_t rnr_attempts);
  void remote_read_response(std::uint32_t qpn, SenderMeta m,
                            std::uintptr_t addr, std::uint64_t len,
                            NodeId responder,
                            std::vector<ChunkArrival> arrivals,
                            std::vector<std::byte> data);

  /// Schedule an ACK/NAK-sized packet back to `dst` and run `fn` when it
  /// has been processed there.
  void send_ctrl(Nic& dst, sim::Time earliest, sim::InlineFn fn);
  /// Success-path ACK: like send_ctrl + sender_complete, but fused into a
  /// single event on the requester at
  ///   ack arrival + ack_processing + cqe_write
  /// — the completion time both forms produce; the two-event form only
  /// computed it across an intermediate hop. Error/NAK/RNR paths keep
  /// send_ctrl, whose callback time anchors their retry/flush clocks.
  void ctrl_complete(Nic& requester, sim::Time earliest,
                     std::uint32_t requester_qpn, SenderMeta m);

  /// Emit the WQE-lifecycle trace records (fetch → DMA → wire → delivery)
  /// for one processed WR. Only called when a tracer is attached; `at` is
  /// the WQE's processing time (== now on the traced path).
  void trace_chain(std::uint32_t qpn, const SendWr& wr, const TxTimes& t,
                   NodeId dst_node, std::uint64_t len, sim::Time at,
                   sim::Time fetch_cost);
  /// The fetch-side records only (kWqeFetch, kDmaFetch) — used on the
  /// boundary-crossing path, where the destination shard emits kWireTx and
  /// kDmaDeliver once it has computed the true wire arrival.
  void trace_fetch(std::uint32_t qpn, const SendWr& wr, std::uint64_t len,
                   sim::Time fetch_cost);
  /// Summed PCIe occupancy of a payload's MTU chunks (the source-side DMA
  /// service time plumbed into kDmaFetch records).
  sim::Time dma_fetch_time(std::uint64_t len) const;

  void complete_at(sim::Time at, CompletionQueue& cq, Cqe cqe);
  /// Sender-side completion for wr_id on `qpn` (releases the SQ credit;
  /// emits a CQE only if the WR was signaled or failed).
  void sender_complete(std::uint32_t qpn, const SenderMeta& m, WcStatus status,
                       sim::Time at);
  /// The completion itself, executed at the current virtual time (the
  /// body of sender_complete's scheduled event; ctrl_complete posts it
  /// directly at the completion time).
  void sender_complete_now(std::uint32_t qpn, const SenderMeta& m,
                           WcStatus status);
  void sender_complete(std::uint32_t qpn, const SendWr& wr, WcStatus status,
                       sim::Time at) {
    sender_complete(qpn, meta_of(wr), status, at);
  }

  sim::Engine* engine_;
  fabric::Network* network_;
  NicRegistry* registry_;
  NodeId node_;
  NicConfig cfg_;

  sim::Resource processing_;  // WQE/command processing pipeline
  // PCIe is full duplex and the device has independent read/write DMA
  // engines; modelling them as one FIFO would let future-dated write
  // reservations (arrivals) falsely block read reservations (sends) on
  // loopback paths.
  sim::Resource dma_rd_;      // payload fetches (TX side)
  sim::Resource dma_wr_;      // payload deliveries (RX side)

  // qpn/cqn/srqn are handed out sequentially from fixed bases, so the
  // object tables are dense vectors indexed by (n - base): creation
  // appends, destruction nulls the slot, every data-plane lookup is O(1).
  // The objects themselves live on the engine's size-classed slabs
  // (sim::SlabPtr), so objects created together sit adjacent in memory
  // and a burst drain walks contiguous storage.
  static constexpr std::uint32_t kFirstCqn = 1;
  static constexpr std::uint32_t kFirstQpn = 0x100;
  static constexpr std::uint32_t kFirstSrqn = 1;

  MrTable mrs_;
  std::vector<sim::SlabPtr<CompletionQueue>> cqs_;
  std::vector<sim::SlabPtr<QueuePair>> qps_;
  std::vector<sim::SlabPtr<SharedReceiveQueue>> srqs_;
  WrPool wr_pool_;
  ProtectionDomainId next_pd_ = 1;

  /// Struct-of-arrays view of the WQEs at the head of one SQ, rebuilt by
  /// each fused drain event and dead outside it. The gather pass fills
  /// the descriptor columns; the batched protection pass fills mr_ok;
  /// the processing loop then consumes both. Member (not stack) so the
  /// columns' capacity is reused across bursts.
  struct SqBurst {
    std::vector<std::uint8_t> opcode;    // static_cast<uint8_t>(Opcode)
    std::vector<std::uint32_t> len;      // payload bytes
    std::vector<std::uintptr_t> addr;    // sge.addr
    std::vector<std::uint32_t> sge_len;  // sge.length
    std::vector<std::uint32_t> lkey;
    std::vector<std::uint8_t> inline_or_empty;  // skips the MR lookup
    std::vector<std::uint8_t> mr_ok;
    void clear() {
      opcode.clear();
      len.clear();
      addr.clear();
      sge_len.clear();
      lkey.clear();
      inline_or_empty.clear();
      mr_ok.clear();
    }
    std::size_t size() const { return opcode.size(); }
  };
  SqBurst burst_;

  /// On-NIC context caches (ICM model). QP contexts are touched on every
  /// doorbell ring, MR contexts on every MR-referencing WQE fetch; misses
  /// fold icm_miss_latency into the existing reservation timestamps.
  /// Sender-side only, so all state stays shard-local; the NIC never opts
  /// into speculative callbacks, so no journaling is needed under
  /// sync=speculative (DESIGN.md §17: non-replayable models are fences).
  IcmCache icm_qp_;
  IcmCache icm_mr_;

  NicCounters counters_;
};

}  // namespace cord::nic
