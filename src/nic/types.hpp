// Wire-level vocabulary of the simulated RDMA NIC: opcodes, completion
// statuses, work requests and completion entries. The names deliberately
// mirror ibverbs so the verbs layer on top is a thin veneer.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fabric/link.hpp"

namespace cord::nic {

using NodeId = fabric::NodeId;

/// Work-request opcodes accepted on a send queue.
enum class Opcode : std::uint8_t {
  kSend,
  kSendWithImm,
  kRdmaWrite,
  kRdmaWriteWithImm,
  kRdmaRead,
  kFetchAdd,
  kCompareSwap,
};

/// Opcode reported in a completion entry.
enum class WcOpcode : std::uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaRead,
  kFetchAdd,
  kCompareSwap,
  kRecv,
  kRecvRdmaWithImm,
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocalLengthError,
  kLocalProtectionError,
  kRemoteAccessError,
  kRemoteInvalidRequest,
  kRnrRetryExceeded,
  kWorkRequestFlushed,
};

std::string_view to_string(WcStatus s);
std::string_view to_string(Opcode op);

enum class QpType : std::uint8_t { kRC, kUD };
enum class QpState : std::uint8_t { kReset, kInit, kRtr, kRts, kError };

/// MR access permissions (bitmask).
enum Access : std::uint32_t {
  kAccessNone = 0,
  kAccessLocalWrite = 1u << 0,
  kAccessRemoteRead = 1u << 1,
  kAccessRemoteWrite = 1u << 2,
  kAccessRemoteAtomic = 1u << 3,
};

using ProtectionDomainId = std::uint32_t;

struct Sge {
  std::uintptr_t addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

/// Address handle for UD destinations.
struct AddressHandle {
  NodeId node = 0;
  std::uint32_t qpn = 0;
};

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  Sge sge;
  bool signaled = true;
  bool inline_data = false;
  std::uint32_t imm = 0;
  // RDMA targets.
  std::uintptr_t remote_addr = 0;
  std::uint32_t rkey = 0;
  // Atomic operands (kFetchAdd: compare_add is the addend; kCompareSwap:
  // compare_add is the expected value, swap the replacement). The SGE
  // names the 8-byte local buffer that receives the prior remote value.
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;
  // UD destination.
  AddressHandle ud;
  // Trace correlation id (cord::trace): stamped by the posting layer when
  // tracing is enabled, carried through kernel and NIC so every lifecycle
  // record of this WR shares one span. 0 = untraced.
  std::uint32_t trace_span = 0;
  // Payload snapshot for inline sends, captured at post time (this is the
  // semantic point of inline: the buffer may be reused immediately).
  std::vector<std::byte> inline_payload;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  Sge sge;
};

struct Cqe {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  WcOpcode opcode = WcOpcode::kSend;
  std::uint32_t byte_len = 0;
  std::uint32_t qp_num = 0;
  std::uint32_t src_qp = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
};

/// Grh prepended to UD receive payloads (matches InfiniBand semantics:
/// the first 40 bytes of a UD receive buffer hold the global route header).
inline constexpr std::uint32_t kGrhBytes = 40;

}  // namespace cord::nic
