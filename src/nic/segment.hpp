// MTU segmentation, shared by the fused and split transmission paths.
//
// A message of `bytes` payload is cut into MTU-sized chunks; a
// zero-length message (doorbell-only send, pure-immediate write) still
// occupies exactly one header-only chunk on the wire. Both facts used to
// live implicitly in three copies of the same do/while loop
// (schedule_chain, schedule_chain_src, reserve_dst_chain); they are the
// segmentation contract, so they live here once, where the chunk-count
// arithmetic and the iteration can't drift apart.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

namespace cord::nic {

/// Number of wire chunks for a payload of `bytes` at MTU `mtu`.
/// Zero-length messages count as one (header-only) chunk.
constexpr std::uint64_t chunk_count(std::uint64_t bytes, std::uint32_t mtu) {
  return bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
}

/// Invoke `fn(chunk_bytes)` once per MTU chunk, in wire order. The final
/// chunk carries the remainder (or 0 for a zero-length message).
template <typename Fn>
void for_each_chunk(std::uint64_t bytes, std::uint32_t mtu, Fn&& fn) {
  std::uint64_t left = bytes;
  do {
    const auto chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(left, mtu));
    fn(chunk);
    left -= chunk;
  } while (left > 0);
}

}  // namespace cord::nic
