// Queue pair: the communication endpoint. Holds the send/receive rings,
// the connection state machine (RESET -> INIT -> RTR -> RTS -> ERROR) and
// per-QP traffic counters (exported to the kernel for observability — one
// of the OS-control features CoRD enables).
#pragma once

#include <cstdint>
#include <deque>

#include "nic/cq.hpp"
#include "nic/srq.hpp"
#include "nic/types.hpp"

namespace cord::nic {

struct QpCounters {
  std::uint64_t tx_msgs = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_msgs = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rnr_events = 0;
  std::uint64_t errors = 0;
};

struct QpConfig {
  QpType type = QpType::kRC;
  ProtectionDomainId pd = 0;
  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;
  std::uint32_t sq_depth = 128;
  std::uint32_t rq_depth = 512;
  std::uint32_t max_inline = 0;
  /// When set, inbound messages consume WQEs from this shared receive
  /// queue instead of the per-QP RQ (post_recv is then invalid).
  SharedReceiveQueue* srq = nullptr;
};

class QueuePair {
 public:
  QueuePair(std::uint32_t qpn, const QpConfig& cfg) : qpn_(qpn), cfg_(cfg) {}

  std::uint32_t qpn() const { return qpn_; }
  const QpConfig& config() const { return cfg_; }
  QpType type() const { return cfg_.type; }
  QpState state() const { return state_; }
  ProtectionDomainId pd() const { return cfg_.pd; }
  CompletionQueue& send_cq() const { return *cfg_.send_cq; }
  CompletionQueue& recv_cq() const { return *cfg_.recv_cq; }

  /// RC peer (valid once RTR).
  const AddressHandle& dest() const { return dest_; }

  QpCounters& counters() { return counters_; }
  const QpCounters& counters() const { return counters_; }

 private:
  friend class Nic;

  std::uint32_t qpn_;
  QpConfig cfg_;
  QpState state_ = QpState::kReset;
  AddressHandle dest_;

  std::deque<SendWr> sq_;
  std::deque<RecvWr> rq_;
  /// Send WQEs handed to the device but not yet completed (occupies SQ
  /// credits until the CQE is generated).
  std::uint32_t sq_inflight_ = 0;
  bool sq_worker_active_ = false;

  QpCounters counters_;
};

}  // namespace cord::nic
