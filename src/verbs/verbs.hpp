// The ibverbs-like public API — the "narrow waist" the paper interposes.
//
// A Context binds a process (a simulated core of a host, with a tenant id)
// to the RDMA stack in one of two dataplane modes:
//
//   kBypass — classical RDMA: post_send/post_recv/poll_cq run entirely in
//             user space and talk to the NIC through MMIO doorbells.
//   kCord   — the paper's converged dataplane: every data-plane verb is a
//             system call; the kernel runs its policy chain and then the
//             kernel-level driver performs the exact same NIC interaction.
//
// Control-plane verbs (object creation, connection) go through the kernel
// ioctl path in both modes, as in real RDMA.
//
// All verbs return Tasks because they consume simulated CPU time on the
// calling core.
#pragma once

#include <optional>
#include <span>

#include "nic/nic.hpp"
#include "os/kernel.hpp"

namespace cord::verbs {

enum class DataplaneMode { kBypass, kCord };

struct ContextOptions {
  DataplaneMode mode = DataplaneMode::kBypass;
  /// CoRD only: route ibv_poll_cq through the kernel as well ("each
  /// data-plane operation goes through the kernel", §4). When false, the
  /// CQ is polled from user space (it lives in user-mapped memory) and
  /// only the posting verbs cross into the kernel.
  bool poll_via_kernel = true;
  /// CoRD only: whether the kernel data path supports inline sends. The
  /// paper's prototype lacks them on system A, which is what produces the
  /// bimodal small-message overhead of Fig. 5a.
  bool cord_inline_support = true;
  os::TenantId tenant = 0;
};

/// Error returned by wait_* helpers when nothing completes within the
/// virtual-time timeout (indicates a deadlocked workload).
inline constexpr int kErrTimedOut = -110;  // ETIMEDOUT

class Context {
 public:
  Context(os::Host& host, std::size_t core_idx, ContextOptions opts = {})
      : host_(&host), core_(&host.core(core_idx)), opts_(opts) {}

  os::Host& host() { return *host_; }
  os::Core& core() { return *core_; }
  const ContextOptions& options() const { return opts_; }
  DataplaneMode mode() const { return opts_.mode; }
  nic::NodeId node() const { return host_->node(); }

  // --- Control plane ----------------------------------------------------
  sim::Task<nic::ProtectionDomainId> alloc_pd();
  sim::Task<const nic::MemoryRegion*> reg_mr(nic::ProtectionDomainId pd,
                                             void* addr, std::size_t len,
                                             std::uint32_t access);
  sim::Task<bool> dereg_mr(std::uint32_t lkey);
  sim::Task<nic::CompletionQueue*> create_cq(std::uint32_t capacity);
  sim::Task<nic::QueuePair*> create_qp(const nic::QpConfig& cfg);
  sim::Task<nic::SharedReceiveQueue*> create_srq(nic::ProtectionDomainId pd,
                                                 std::uint32_t capacity);
  /// RESET -> INIT -> RTR -> RTS in one call (the usual connection dance).
  sim::Task<int> connect_qp(nic::QueuePair& qp, nic::AddressHandle dest = {});
  sim::Task<> destroy_qp(nic::QueuePair& qp);

  // --- Data plane ---------------------------------------------------------
  sim::Task<int> post_send(nic::QueuePair& qp, nic::SendWr wr);
  sim::Task<int> post_recv(nic::QueuePair& qp, nic::RecvWr wr);
  sim::Task<int> post_srq_recv(nic::SharedReceiveQueue& srq, nic::RecvWr wr);
  sim::Task<std::size_t> poll_cq(nic::CompletionQueue& cq, std::span<nic::Cqe> out);

  /// Busy-poll until one completion arrives (charges spin time — this is
  /// the polling pillar). Fails with kErrTimedOut after `timeout`.
  sim::Task<nic::Cqe> wait_one(nic::CompletionQueue& cq,
                               sim::Time timeout = sim::sec(30));
  /// Interrupt-driven completion wait (the "polling removed" path):
  /// arm the CQ, sleep, get woken by the IRQ, then harvest.
  sim::Task<nic::Cqe> wait_one_event(nic::CompletionQueue& cq,
                                     sim::Time timeout = sim::sec(30));

  /// Number of data-plane verbs issued through this context.
  std::uint64_t dataplane_ops() const { return dataplane_ops_; }

 private:
  os::Host* host_;
  os::Core* core_;
  ContextOptions opts_;
  std::uint64_t dataplane_ops_ = 0;
};

}  // namespace cord::verbs
