// The ibverbs-like public API — the "narrow waist" the paper interposes.
//
// A Context binds a process (a simulated core of a host, with a tenant id)
// to the RDMA stack in one of two dataplane modes:
//
//   kBypass — classical RDMA: post_send/post_recv/poll_cq run entirely in
//             user space and talk to the NIC through MMIO doorbells.
//   kCord   — the paper's converged dataplane: every data-plane verb is a
//             system call; the kernel runs its policy chain and then the
//             kernel-level driver performs the exact same NIC interaction.
//
// Control-plane verbs (object creation, connection) go through the kernel
// ioctl path in both modes, as in real RDMA.
//
// All verbs return Tasks because they consume simulated CPU time on the
// calling core.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "nic/nic.hpp"
#include "os/kernel.hpp"

namespace cord::verbs {

enum class DataplaneMode { kBypass, kCord };

struct ContextOptions {
  DataplaneMode mode = DataplaneMode::kBypass;
  /// CoRD only: route ibv_poll_cq through the kernel as well ("each
  /// data-plane operation goes through the kernel", §4). When false, the
  /// CQ is polled from user space (it lives in user-mapped memory) and
  /// only the posting verbs cross into the kernel.
  bool poll_via_kernel = true;
  /// CoRD only: whether the kernel data path supports inline sends. The
  /// paper's prototype lacks them on system A, which is what produces the
  /// bimodal small-message overhead of Fig. 5a.
  bool cord_inline_support = true;
  /// CoRD only: maximum back-to-back sends gathered into a per-QP
  /// submission ring before one batched kernel crossing flushes them
  /// (io_uring-style; Kernel::submit_send_batch). 1 (the default) keeps
  /// the classic one-syscall-per-op path, byte-identical to older builds.
  /// With tx_batch > 1 a buffered post_send returns 0 immediately; its
  /// real verdict is delivered at flush time (any verb that is not an
  /// append to the same ring — a poll, a receive post, a flush(), or the
  /// ring filling up). Deferred nonzero rcs are counted in
  /// deferred_errors() and surfaced as the flush's return value.
  std::uint32_t tx_batch = 1;
  os::TenantId tenant = 0;
};

/// Error returned by wait_* helpers when nothing completes within the
/// virtual-time timeout (indicates a deadlocked workload).
inline constexpr int kErrTimedOut = -110;  // ETIMEDOUT

class Context {
 public:
  Context(os::Host& host, std::size_t core_idx, ContextOptions opts = {})
      : host_(&host), core_(&host.core(core_idx)), opts_(opts) {}

  os::Host& host() { return *host_; }
  os::Core& core() { return *core_; }
  const ContextOptions& options() const { return opts_; }
  DataplaneMode mode() const { return opts_.mode; }
  nic::NodeId node() const { return host_->node(); }

  // --- Control plane ----------------------------------------------------
  sim::Task<nic::ProtectionDomainId> alloc_pd();
  sim::Task<const nic::MemoryRegion*> reg_mr(nic::ProtectionDomainId pd,
                                             void* addr, std::size_t len,
                                             std::uint32_t access);
  sim::Task<bool> dereg_mr(std::uint32_t lkey);
  sim::Task<nic::CompletionQueue*> create_cq(std::uint32_t capacity);
  sim::Task<nic::QueuePair*> create_qp(const nic::QpConfig& cfg);
  sim::Task<nic::SharedReceiveQueue*> create_srq(nic::ProtectionDomainId pd,
                                                 std::uint32_t capacity);
  /// RESET -> INIT -> RTR -> RTS in one call (the usual connection dance).
  sim::Task<int> connect_qp(nic::QueuePair& qp, nic::AddressHandle dest = {});
  sim::Task<> destroy_qp(nic::QueuePair& qp);

  // --- Data plane ---------------------------------------------------------
  sim::Task<int> post_send(nic::QueuePair& qp, nic::SendWr wr);
  sim::Task<int> post_recv(nic::QueuePair& qp, nic::RecvWr wr);
  sim::Task<int> post_srq_recv(nic::SharedReceiveQueue& srq, nic::RecvWr wr);
  sim::Task<std::size_t> poll_cq(nic::CompletionQueue& cq, std::span<nic::Cqe> out);

  // --- Batched submission (ContextOptions::tx_batch > 1, CoRD only) -----
  /// Flush one QP's pending submission ring in a single kernel crossing.
  /// Flushing an empty (or absent) ring is a strict no-op — no syscall is
  /// charged and no policy runs. Returns the first nonzero per-WR rc.
  sim::Task<int> flush(nic::QueuePair& qp);
  /// Flush every pending ring (same no-op guarantee when none pend).
  sim::Task<int> flush_all();
  /// WRs currently gathered and not yet submitted, across all rings.
  std::uint32_t pending() const;
  /// Post a burst of receives in one kernel crossing (CoRD batching); in
  /// bypass mode or with tx_batch == 1 it degrades to per-op posting.
  sim::Task<int> post_recv_burst(nic::QueuePair& qp,
                                 std::span<const nic::RecvWr> wrs);
  /// Nonzero per-WR results observed at flush time (a buffered post_send
  /// already returned 0 to its caller by then).
  std::uint64_t deferred_errors() const { return deferred_errors_; }

  /// Busy-poll until one completion arrives (charges spin time — this is
  /// the polling pillar). Fails with kErrTimedOut after `timeout`.
  sim::Task<nic::Cqe> wait_one(nic::CompletionQueue& cq,
                               sim::Time timeout = sim::sec(30));
  /// Interrupt-driven completion wait (the "polling removed" path):
  /// arm the CQ, sleep, get woken by the IRQ, then harvest.
  sim::Task<nic::Cqe> wait_one_event(nic::CompletionQueue& cq,
                                     sim::Time timeout = sim::sec(30));

  /// Number of data-plane verbs issued through this context.
  std::uint64_t dataplane_ops() const { return dataplane_ops_; }

 private:
  /// One QP's gathered-but-unsubmitted sends (tx_batch > 1 only).
  struct SendRing {
    nic::QueuePair* qp = nullptr;
    std::vector<nic::SendWr> wrs;
  };

  bool batching() const {
    return opts_.mode == DataplaneMode::kCord && opts_.tx_batch > 1;
  }
  SendRing& ring(nic::QueuePair& qp);
  SendRing* find_ring(nic::QueuePair& qp);
  /// Flush every pending ring except `keep` (a post to one QP ends every
  /// other QP's gather window, preserving cross-QP ordering).
  sim::Task<int> flush_others(nic::QueuePair& keep);

  os::Host* host_;
  os::Core* core_;
  ContextOptions opts_;
  std::uint64_t dataplane_ops_ = 0;
  std::uint64_t deferred_errors_ = 0;
  std::vector<SendRing> rings_;
};

}  // namespace cord::verbs
