#include "verbs/verbs.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace cord::verbs {

namespace {

std::uint8_t node8(os::Host& host) {
  return static_cast<std::uint8_t>(host.node());
}

}  // namespace

sim::Task<nic::ProtectionDomainId> Context::alloc_pd() {
  co_return co_await host_->kernel().alloc_pd(*core_);
}

sim::Task<const nic::MemoryRegion*> Context::reg_mr(nic::ProtectionDomainId pd,
                                                    void* addr, std::size_t len,
                                                    std::uint32_t access) {
  co_return co_await host_->kernel().reg_mr(*core_, opts_.tenant, pd, addr, len,
                                            access);
}

sim::Task<bool> Context::dereg_mr(std::uint32_t lkey) {
  co_return co_await host_->kernel().dereg_mr(*core_, opts_.tenant, lkey);
}

sim::Task<nic::CompletionQueue*> Context::create_cq(std::uint32_t capacity) {
  co_return co_await host_->kernel().create_cq(*core_, capacity);
}

sim::Task<nic::QueuePair*> Context::create_qp(const nic::QpConfig& cfg) {
  co_return co_await host_->kernel().create_qp(*core_, cfg);
}

sim::Task<nic::SharedReceiveQueue*> Context::create_srq(nic::ProtectionDomainId pd,
                                                        std::uint32_t capacity) {
  co_return co_await host_->kernel().create_srq(*core_, pd, capacity);
}

sim::Task<int> Context::connect_qp(nic::QueuePair& qp, nic::AddressHandle dest) {
  os::Kernel& k = host_->kernel();
  if (int rc = co_await k.modify_qp(*core_, qp, nic::QpState::kInit); rc != 0)
    co_return rc;
  if (int rc = co_await k.modify_qp(*core_, qp, nic::QpState::kRtr, dest); rc != 0)
    co_return rc;
  co_return co_await k.modify_qp(*core_, qp, nic::QpState::kRts);
}

sim::Task<> Context::destroy_qp(nic::QueuePair& qp) {
  // Pending ring entries reference the QP; submit them before it dies.
  if (batching()) (void)co_await flush(qp);
  co_await host_->kernel().destroy_qp(*core_, qp.qpn());
}

Context::SendRing* Context::find_ring(nic::QueuePair& qp) {
  for (SendRing& r : rings_) {
    if (r.qp == &qp) return &r;
  }
  return nullptr;
}

Context::SendRing& Context::ring(nic::QueuePair& qp) {
  if (SendRing* r = find_ring(qp)) return *r;
  rings_.push_back(SendRing{&qp, {}});
  rings_.back().wrs.reserve(opts_.tx_batch);
  return rings_.back();
}

sim::Task<int> Context::flush(nic::QueuePair& qp) {
  SendRing* r = find_ring(qp);
  if (r == nullptr || r->wrs.empty()) co_return 0;  // empty flush is free
  // Move the ring out before suspending: the submit path can re-enter
  // this context (and the rings_ vector may grow) while we are away.
  std::vector<nic::SendWr> wrs = std::move(r->wrs);
  r->wrs.clear();
  std::vector<int> rcs(wrs.size(), 0);
  const int rc = co_await host_->kernel().submit_send_batch(
      *core_, opts_.tenant, qp, wrs, rcs);
  for (int e : rcs) {
    if (e != 0) ++deferred_errors_;
  }
  co_return rc;
}

sim::Task<int> Context::flush_all() {
  int first = 0;
  // Index loop: a flush suspends, and rings_ may grow while suspended.
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    nic::QueuePair* qp = rings_[i].qp;
    if (rings_[i].wrs.empty()) continue;
    const int rc = co_await flush(*qp);
    if (first == 0) first = rc;
  }
  co_return first;
}

sim::Task<int> Context::flush_others(nic::QueuePair& keep) {
  int first = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    nic::QueuePair* qp = rings_[i].qp;
    if (qp == &keep || rings_[i].wrs.empty()) continue;
    const int rc = co_await flush(*qp);
    if (first == 0) first = rc;
  }
  co_return first;
}

std::uint32_t Context::pending() const {
  std::uint32_t n = 0;
  for (const SendRing& r : rings_) {
    n += static_cast<std::uint32_t>(r.wrs.size());
  }
  return n;
}

sim::Task<int> Context::post_send(nic::QueuePair& qp, nic::SendWr wr) {
  ++dataplane_ops_;
  const os::CpuModel& m = core_->model();
  // A WR's span chain starts here: mint the correlation id at the API
  // boundary so every later record (syscall, policy, NIC) links back.
  if (trace::Tracer* tr = core_->engine().tracer()) [[unlikely]] {
    wr.trace_span = tr->new_span();
    // Above the NIC the payload is always described by the SGE; the inline
    // copy into the WQE happens later, inside the NIC's post_send.
    const std::uint64_t bytes = wr.sge.length;
    tr->record(trace::Point::kVerbsPostSend, wr.trace_span, qp.qpn(),
               opts_.tenant, node8(*host_), bytes, 0,
               static_cast<std::uint16_t>(wr.opcode));
  }
  // CoRD without inline support falls back to a regular DMA'd send — the
  // missing-inline gap the paper observed on system A.
  if (wr.inline_data && opts_.mode == DataplaneMode::kCord &&
      !opts_.cord_inline_support) {
    wr.inline_data = false;
  }
  // Building the WQE (plus the inline payload copy) happens in user space
  // in both modes; the drivers are "largely equivalent".
  sim::Time build = m.wqe_build;
  if (wr.inline_data) build += core_->memcpy_time(wr.sge.length);
  co_await core_->work(build, os::Work::kCompute);

  if (opts_.mode == DataplaneMode::kBypass) {
    co_await core_->work(m.doorbell_mmio, os::Work::kCompute);
    co_return host_->nic().post_send(qp, std::move(wr));
  }
  if (batching()) {
    // Gather into this QP's submission ring; a post to a different QP
    // first closes the other rings' gather windows.
    (void)co_await flush_others(qp);
    SendRing& r = ring(qp);
    r.wrs.push_back(std::move(wr));
    if (r.wrs.size() >= opts_.tx_batch) co_return co_await flush(qp);
    co_return 0;
  }
  co_return co_await host_->kernel().post_send(*core_, opts_.tenant, qp,
                                               std::move(wr));
}

sim::Task<int> Context::post_recv(nic::QueuePair& qp, nic::RecvWr wr) {
  if (batching()) (void)co_await flush_all();  // a recv ends the gather
  ++dataplane_ops_;
  const os::CpuModel& m = core_->model();
  if (trace::Tracer* tr = core_->engine().tracer()) [[unlikely]] {
    tr->record(trace::Point::kVerbsPostRecv, 0, qp.qpn(), opts_.tenant,
               node8(*host_), wr.sge.length);
  }
  co_await core_->work(m.wqe_build, os::Work::kCompute);
  if (opts_.mode == DataplaneMode::kBypass) {
    co_await core_->work(m.doorbell_mmio, os::Work::kCompute);
    co_return host_->nic().post_recv(qp, wr);
  }
  co_return co_await host_->kernel().post_recv(*core_, opts_.tenant, qp, wr);
}

sim::Task<int> Context::post_srq_recv(nic::SharedReceiveQueue& srq,
                                      nic::RecvWr wr) {
  if (batching()) (void)co_await flush_all();
  ++dataplane_ops_;
  const os::CpuModel& m = core_->model();
  co_await core_->work(m.wqe_build, os::Work::kCompute);
  if (opts_.mode == DataplaneMode::kBypass) {
    co_await core_->work(m.doorbell_mmio, os::Work::kCompute);
    co_return host_->nic().post_srq_recv(srq, wr);
  }
  co_return co_await host_->kernel().post_srq_recv(*core_, opts_.tenant, srq, wr);
}

sim::Task<int> Context::post_recv_burst(nic::QueuePair& qp,
                                        std::span<const nic::RecvWr> wrs) {
  if (wrs.empty()) co_return 0;
  if (!batching()) {
    // Degrades to the classic per-op path (bypass, or tx_batch == 1).
    int first = 0;
    for (const nic::RecvWr& wr : wrs) {
      const int rc = co_await post_recv(qp, wr);
      if (first == 0) first = rc;
    }
    co_return first;
  }
  (void)co_await flush_all();  // a recv ends the gather
  dataplane_ops_ += wrs.size();
  const os::CpuModel& m = core_->model();
  if (trace::Tracer* tr = core_->engine().tracer()) [[unlikely]] {
    for (const nic::RecvWr& wr : wrs) {
      tr->record(trace::Point::kVerbsPostRecv, 0, qp.qpn(), opts_.tenant,
                 node8(*host_), wr.sge.length);
    }
  }
  co_await core_->work(static_cast<sim::Time>(wrs.size()) * m.wqe_build,
                       os::Work::kCompute);
  std::vector<int> rcs(wrs.size(), 0);
  co_return co_await host_->kernel().submit_recv_batch(*core_, opts_.tenant, qp,
                                                       wrs, rcs);
}

sim::Task<std::size_t> Context::poll_cq(nic::CompletionQueue& cq,
                                        std::span<nic::Cqe> out) {
  // Harvesting closes every gather window: whatever was posted must be
  // submitted before we look for its completions.
  if (batching()) (void)co_await flush_all();
  ++dataplane_ops_;
  if (opts_.mode == DataplaneMode::kCord && opts_.poll_via_kernel) {
    co_return co_await host_->kernel().poll_cq(*core_, opts_.tenant, cq, out);
  }
  // User-space poll: the CQ ring lives in user-mapped memory.
  const os::CpuModel& m = core_->model();
  const std::size_t n = cq.poll(out);
  if (n > 0) {
    if (trace::Tracer* tr = core_->engine().tracer()) [[unlikely]] {
      tr->record(trace::Point::kVerbsPollCq, 0, cq.cqn(), opts_.tenant,
                 node8(*host_), n);
    }
  }
  const sim::Time cost =
      n == 0 ? m.poll_miss : static_cast<sim::Time>(n) * m.poll_hit;
  co_await core_->work(cost, n == 0 ? os::Work::kSpin : os::Work::kCompute);
  co_return n;
}

sim::Task<nic::Cqe> Context::wait_one(nic::CompletionQueue& cq, sim::Time timeout) {
  const sim::Time deadline = core_->engine().now() + timeout;
  nic::Cqe wc;
  for (;;) {
    const std::size_t n = co_await poll_cq(cq, std::span<nic::Cqe>{&wc, 1});
    if (n == 1) co_return wc;
    if (core_->engine().now() >= deadline) {
      throw std::runtime_error(
          "wait_one timed out: no completion arrived (workload deadlock?)");
    }
  }
}

sim::Task<nic::Cqe> Context::wait_one_event(nic::CompletionQueue& cq,
                                            sim::Time timeout) {
  const sim::Time deadline = core_->engine().now() + timeout;
  nic::Cqe wc;
  for (;;) {
    // Harvest without spinning: one poll, then sleep on the CQ event.
    const std::size_t n = co_await poll_cq(cq, std::span<nic::Cqe>{&wc, 1});
    if (n == 1) co_return wc;
    if (core_->engine().now() >= deadline) {
      throw std::runtime_error("wait_one_event timed out");
    }
    co_await host_->kernel().wait_cq_event(*core_, cq);
  }
}

}  // namespace cord::verbs
