// Massive-tenancy scenarios: connection scaling and noisy-neighbor
// isolation (the paper's §2 scalability argument made runnable).
//
//   run_conn_scale      — one client host holding N logical connections to
//                         one server, issuing RDMA writes round-robin.
//                         Exclusive mode pins one QP (and one MR) context
//                         per connection on the NIC; once N outgrows the
//                         ICM cache (nic/icm.hpp) every doorbell and WQE
//                         fetch pays a host-memory context fetch — the
//                         connection-count latency cliff. Shared mode
//                         (os/conn.hpp) bounds the context working set
//                         (and host memory) with a fixed physical pool.
//
//   run_noisy_neighbor  — V victim tenants ping a quiet host while an
//                         attacker tenant on the same NIC floods doorbells
//                         (deep windows over many QPs, thrashing the ICM
//                         cache) and churns MR registrations. In bypass
//                         mode the kernel never sees the data plane, so no
//                         policy can protect the victims; in CoRD mode the
//                         policy chain (QosTokenBucket + OpRateQuota +
//                         RegistrationQuota + SecurityAcl) paces the
//                         attacker and restores the victims' tail latency.
//
// Both scenarios shard like the classic tests (connection setup is
// out-of-band direct NIC state, so no sequential setup phase is needed)
// and are bit-identical across shard counts, queue backends and sync
// modes — asserted in tests/test_tenancy.cpp.
#pragma once

#include "core/system.hpp"
#include "os/conn.hpp"
#include "sim/stats.hpp"

namespace cord::perftest {

struct ScaleParams {
  /// Logical connections from client (host 0) to server (host 1).
  std::size_t connections = 1024;
  os::ConnMode conn_mode = os::ConnMode::kExclusive;
  std::uint32_t shared_qp_pool = 64;
  /// On-NIC context-cache capacities (0 = unbounded, the model off).
  std::uint32_t icm_qp_capacity = 0;
  std::uint32_t icm_mr_capacity = 0;
  /// RDMA writes issued round-robin across the connections.
  std::size_t ops = 20000;
  std::size_t msg_size = 64;
  /// Outstanding-operation window (must not exceed `connections`).
  std::uint32_t window = 16;
  /// Issue through the CoRD kernel dataplane instead of bypass.
  bool cord = false;
  std::size_t shards = 1;
  sim::QueueKind queue = sim::QueueKind::kHeap;
  sim::SyncMode sync = sim::SyncMode::kConservative;
};

struct ScaleResult {
  /// Per-operation post-to-completion latency in microseconds.
  sim::Samples latency_us;
  double avg_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Client-NIC ICM cache counters for the run.
  std::uint64_t icm_qp_hits = 0, icm_qp_misses = 0, icm_qp_evictions = 0;
  std::uint64_t icm_mr_hits = 0, icm_mr_misses = 0, icm_mr_evictions = 0;
  /// Physical QPs actually created client-side, and the bytes of
  /// per-logical-connection descriptor state (the memory bounded by
  /// shared mode).
  std::size_t physical_qps = 0;
  std::size_t conn_table_bytes = 0;
  std::uint64_t clamped_events = 0;
};

ScaleResult run_conn_scale(const core::SystemConfig& cfg, const ScaleParams& p);

struct NoisyParams {
  /// Victim tenants (tenant ids 1..victims, one core each on host 0),
  /// each pinging host 1 with small signaled RDMA writes.
  std::size_t victims = 4;
  std::size_t victim_pings = 300;
  sim::Time victim_gap = sim::us(15);
  std::size_t msg_size = 64;
  /// Attacker tenant (id victims+1) floods host 2 over this many QPs —
  /// sized past icm_qp_capacity so every attacker doorbell misses and
  /// evicts victim contexts.
  std::size_t attacker_qps = 768;
  std::size_t attacker_msg = 256;
  std::uint32_t attacker_window = 64;
  /// Attacker runs until this virtual time (victims finish by count).
  sim::Time duration = sim::ms(5);
  /// On-NIC context-cache capacities for every NIC in the system.
  std::uint32_t icm_qp_capacity = 512;
  std::uint32_t icm_mr_capacity = 512;
  /// Dataplane mode for all tenants: bypass (policies can't touch the
  /// data plane) or CoRD (every verb crosses the policy chain).
  bool cord = false;
  /// Install the isolation chain on host 0's kernel.
  bool policies = false;
  /// Attacker budgets when policies are installed.
  double attacker_ops_per_sec = 250e3;   // OpRateQuota override
  double attacker_bytes_per_sec = 32e6;  // QosTokenBucket override (shape)
  std::uint32_t max_live_mrs = 8;        // RegistrationQuota live cap
  double regs_per_sec = 2000.0;          // RegistrationQuota refill
  std::size_t shards = 1;
  sim::QueueKind queue = sim::QueueKind::kHeap;
  sim::SyncMode sync = sim::SyncMode::kConservative;
};

struct NoisyResult {
  /// Victim ping completion times (all victims pooled), microseconds.
  sim::Samples victim_us;
  double victim_avg_us = 0.0;
  double victim_p50_us = 0.0;
  double victim_p99_us = 0.0;
  /// Attacker progress: completed writes, denied posts (policy -EAGAIN),
  /// completed and denied MR registrations.
  std::uint64_t attacker_ops = 0;
  std::uint64_t attacker_denied = 0;
  std::uint64_t attacker_regs = 0;
  std::uint64_t attacker_reg_denied = 0;
  /// Host-0 NIC ICM counters (shared between victims and attacker).
  std::uint64_t icm_qp_misses = 0;
  std::uint64_t icm_qp_evictions = 0;
  std::uint64_t clamped_events = 0;
};

NoisyResult run_noisy_neighbor(const core::SystemConfig& cfg,
                               const NoisyParams& p);

}  // namespace cord::perftest
