#include "perftest/perftest.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/join.hpp"

namespace cord::perftest {
namespace {

using nic::Cqe;
using nic::RecvWr;
using nic::SendWr;
using sim::Time;

constexpr std::byte kPattern{0xA5};

std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

struct Setup {
  core::System* sys = nullptr;
  std::unique_ptr<verbs::Context> client;
  std::unique_ptr<verbs::Context> server;
  nic::ProtectionDomainId pd_c = 0, pd_s = 0;
  nic::CompletionQueue* scq_c = nullptr;
  nic::CompletionQueue* rcq_c = nullptr;
  nic::CompletionQueue* scq_s = nullptr;
  nic::CompletionQueue* rcq_s = nullptr;
  nic::QueuePair* qp_c = nullptr;
  nic::QueuePair* qp_s = nullptr;

  // `data` is the local send source (remote-readable for read tests);
  // `sink` is the local receive/landing region (remote-writable).
  std::vector<std::byte> data_c, sink_c, data_s, sink_s;
  const nic::MemoryRegion* mr_data_c = nullptr;
  const nic::MemoryRegion* mr_sink_c = nullptr;
  const nic::MemoryRegion* mr_data_s = nullptr;
  const nic::MemoryRegion* mr_sink_s = nullptr;

  bool is_ud = false;
  bool use_inline = false;
  std::uint32_t recv_len = 0;  // sink slot length (payload + GRH for UD)
  std::uint32_t slots = 1;     // receive slots carved out of `sink`
  nic::NodeId server_node = 1; // last host (1 on the classic two-host wire)
};

/// Receive-slot sizing: bandwidth tests rotate through several slots so a
/// deep RQ can stay posted.
sim::Task<> establish(Setup& s, core::System& sys, const Params& p,
                      std::uint32_t slots) {
  s.sys = &sys;
  s.is_ud = p.transport == Transport::kUD;
  s.slots = slots;
  s.server_node = static_cast<nic::NodeId>(sys.host_count() - 1);
  verbs::ContextOptions copts = p.client;
  verbs::ContextOptions sopts = p.server;
  if (p.tx_batch > 1) {
    copts.tx_batch = p.tx_batch;
    sopts.tx_batch = p.tx_batch;
  }
  s.client = std::make_unique<verbs::Context>(sys.host(0), 0, copts);
  s.server =
      std::make_unique<verbs::Context>(sys.host(s.server_node), 0, sopts);

  s.pd_c = co_await s.client->alloc_pd();
  s.pd_s = co_await s.server->alloc_pd();
  s.scq_c = co_await s.client->create_cq(8192);
  s.rcq_c = co_await s.client->create_cq(8192);
  s.scq_s = co_await s.server->create_cq(8192);
  s.rcq_s = co_await s.server->create_cq(8192);

  const std::uint32_t max_inline = 0xFFFF;  // device clamps via NicConfig
  const nic::QpType type = s.is_ud ? nic::QpType::kUD : nic::QpType::kRC;
  const std::uint32_t sq_depth = std::max<std::uint32_t>(256, p.tx_depth + 16);
  const std::uint32_t rq_depth = std::max<std::uint32_t>(1024, 2 * p.tx_depth);
  s.qp_c = co_await s.client->create_qp(
      {type, s.pd_c, s.scq_c, s.rcq_c, sq_depth, rq_depth, max_inline});
  s.qp_s = co_await s.server->create_qp(
      {type, s.pd_s, s.scq_s, s.rcq_s, sq_depth, rq_depth, max_inline});
  if (s.is_ud) {
    (void)co_await s.client->connect_qp(*s.qp_c);
    (void)co_await s.server->connect_qp(*s.qp_s);
  } else {
    int rc = co_await s.client->connect_qp(*s.qp_c,
                                           {s.server_node, s.qp_s->qpn()});
    if (rc != 0) throw std::runtime_error("client connect failed");
    rc = co_await s.server->connect_qp(*s.qp_s, {0, s.qp_c->qpn()});
    if (rc != 0) throw std::runtime_error("server connect failed");
  }

  s.recv_len = static_cast<std::uint32_t>(p.msg_size) +
               (s.is_ud ? nic::kGrhBytes : 0);
  s.data_c.assign(p.msg_size, kPattern);
  s.data_s.assign(p.msg_size, kPattern);
  s.sink_c.assign(static_cast<std::size_t>(s.recv_len) * slots, std::byte{0});
  s.sink_s.assign(static_cast<std::size_t>(s.recv_len) * slots, std::byte{0});

  s.mr_data_c = co_await s.client->reg_mr(s.pd_c, s.data_c.data(), s.data_c.size(),
                                          nic::kAccessRemoteRead);
  s.mr_data_s = co_await s.server->reg_mr(s.pd_s, s.data_s.data(), s.data_s.size(),
                                          nic::kAccessRemoteRead);
  s.mr_sink_c = co_await s.client->reg_mr(
      s.pd_c, s.sink_c.data(), s.sink_c.size(),
      nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
  s.mr_sink_s = co_await s.server->reg_mr(
      s.pd_s, s.sink_s.data(), s.sink_s.size(),
      nic::kAccessLocalWrite | nic::kAccessRemoteWrite);

  // Inline when the device supports it at this size (perftest default).
  const std::uint32_t dev_inline = sys.config().nic.max_inline;
  s.use_inline = p.allow_inline && p.op != TestOp::kRead &&
                 p.msg_size <= dev_inline;
}

std::byte* sink_slot(std::vector<std::byte>& sink, std::uint32_t recv_len,
                     std::uint32_t slot) {
  return sink.data() + static_cast<std::size_t>(recv_len) * slot;
}

/// Emulated getppid per data-plane op (the "kernel-bypass removed" knob).
sim::Task<> maybe_syscall(verbs::Context& ctx, const Knobs& k) {
  if (k.extra_syscall) {
    co_await ctx.core().work(ctx.core().syscall_cost(), os::Work::kKernel);
  }
}

/// Emulated extra data movement (the "zero-copy removed" knob).
sim::Task<> maybe_copy(verbs::Context& ctx, const Knobs& k, std::size_t bytes) {
  if (k.extra_copy) co_await ctx.core().do_memcpy(bytes);
}

sim::Task<Cqe> wait_cqe(verbs::Context& ctx, nic::CompletionQueue& cq,
                        const Knobs& k) {
  Cqe wc = k.interrupt_wait ? co_await ctx.wait_one_event(cq)
                            : co_await ctx.wait_one(cq);
  if (wc.status != nic::WcStatus::kSuccess) {
    throw std::runtime_error(std::string("completion error: ") +
                             std::string(nic::to_string(wc.status)));
  }
  co_return wc;
}

/// Events-mode batch harvest ("polling removed"). Models perftest
/// --use-event faithfully: the consumer never spins — it blocks in
/// ibv_get_cq_event for the interrupt announcing completions (paying the
/// IRQ + wakeup even when CQEs already sit in the ring, since the event
/// that announced them consumed that CPU regardless), acknowledges the
/// event, re-arms, and drains a bounded batch.
sim::Task<std::size_t> event_harvest(verbs::Context& ctx, nic::CompletionQueue& cq,
                                     std::span<Cqe> out) {
  os::Core& core = ctx.core();
  if (cq.depth() == 0) {
    co_await ctx.host().kernel().wait_cq_event(core, cq);  // sleeps; pays IRQ+wake
  } else {
    // Event already delivered while we were busy: its IRQ + the event-fd
    // read still consumed this core.
    co_await core.work(core.model().interrupt_handling +
                           core.model().wakeup_latency + core.syscall_cost(),
                       os::Work::kKernel);
  }
  const std::size_t cap = std::min<std::size_t>(out.size(), 16);
  co_return co_await ctx.poll_cq(cq, out.first(cap));
}

SendWr make_send(const Setup& s, const Params& p, bool from_client) {
  SendWr wr;
  wr.opcode = nic::Opcode::kSend;
  const auto& data = from_client ? s.data_c : s.data_s;
  const auto* mr = from_client ? s.mr_data_c : s.mr_data_s;
  wr.sge = {uptr(data.data()), static_cast<std::uint32_t>(p.msg_size), mr->lkey};
  wr.inline_data = s.use_inline;
  if (s.is_ud) {
    wr.ud = from_client ? nic::AddressHandle{s.server_node, s.qp_s->qpn()}
                        : nic::AddressHandle{0, s.qp_c->qpn()};
  }
  return wr;
}

// ---------------------------------------------------------------------------
// Latency tests
// ---------------------------------------------------------------------------

sim::Task<> send_lat_server(Setup& s, const Params& p, int total) {
  verbs::Context& ctx = *s.server;
  for (int i = 0; i < total; ++i) {
    (void)co_await wait_cqe(ctx, *s.rcq_s, p.knobs);
    // Repost the receive for the next ping before echoing.
    int rc = co_await ctx.post_recv(
        *s.qp_s, {1, {uptr(sink_slot(s.sink_s, s.recv_len, 0)), s.recv_len,
                      s.mr_sink_s->lkey}});
    if (rc != 0) throw std::runtime_error("server post_recv failed");
    co_await maybe_syscall(ctx, p.knobs);
    co_await maybe_copy(ctx, p.knobs, p.msg_size);
    rc = co_await ctx.post_send(*s.qp_s, make_send(s, p, /*from_client=*/false));
    if (rc != 0) throw std::runtime_error("server post_send failed");
    (void)co_await wait_cqe(ctx, *s.scq_s, p.knobs);
  }
}

sim::Task<> send_lat_client(Setup& s, const Params& p, LatencyResult& out) {
  verbs::Context& ctx = *s.client;
  const int total = p.warmup + p.iterations;
  for (int i = 0; i < total; ++i) {
    int rc = co_await ctx.post_recv(
        *s.qp_c, {2, {uptr(sink_slot(s.sink_c, s.recv_len, 0)), s.recv_len,
                      s.mr_sink_c->lkey}});
    if (rc != 0) throw std::runtime_error("client post_recv failed");
    const Time t0 = ctx.core().engine().now();
    co_await maybe_syscall(ctx, p.knobs);
    co_await maybe_copy(ctx, p.knobs, p.msg_size);
    rc = co_await ctx.post_send(*s.qp_c, make_send(s, p, /*from_client=*/true));
    if (rc != 0) throw std::runtime_error("client post_send failed");
    (void)co_await wait_cqe(ctx, *s.scq_c, p.knobs);
    (void)co_await wait_cqe(ctx, *s.rcq_c, p.knobs);
    const Time rtt = ctx.core().engine().now() - t0;
    if (i >= p.warmup) out.latency_us.add(sim::to_us(rtt) / 2.0);
  }
}

/// Busy-poll on a memory location (write_lat's synchronization scheme).
sim::Task<> spin_on_byte(verbs::Context& ctx, const volatile std::byte* addr,
                         std::byte expected) {
  const Time deadline = ctx.core().engine().now() + sim::sec(30);
  while (*addr != expected) {
    co_await ctx.core().work(ctx.core().model().poll_miss, os::Work::kSpin);
    if (ctx.core().engine().now() >= deadline) {
      throw std::runtime_error("write_lat memory poll timed out");
    }
  }
}

sim::Task<> write_lat_server(Setup& s, const Params& p, int total) {
  verbs::Context& ctx = *s.server;
  for (int i = 0; i < total; ++i) {
    const auto marker = static_cast<std::byte>((i % 250) + 1);
    co_await spin_on_byte(ctx, &s.sink_s[p.msg_size - 1], marker);
    s.data_s[p.msg_size - 1] = marker;
    SendWr wr = make_send(s, p, /*from_client=*/false);
    wr.opcode = nic::Opcode::kRdmaWrite;
    wr.remote_addr = uptr(s.sink_c.data());
    wr.rkey = s.mr_sink_c->rkey;
    co_await maybe_syscall(ctx, p.knobs);
    int rc = co_await ctx.post_send(*s.qp_s, std::move(wr));
    if (rc != 0) throw std::runtime_error("server write failed");
    (void)co_await wait_cqe(ctx, *s.scq_s, p.knobs);
  }
}

sim::Task<> write_lat_client(Setup& s, const Params& p, LatencyResult& out) {
  verbs::Context& ctx = *s.client;
  const int total = p.warmup + p.iterations;
  for (int i = 0; i < total; ++i) {
    const auto marker = static_cast<std::byte>((i % 250) + 1);
    s.data_c[p.msg_size - 1] = marker;
    const Time t0 = ctx.core().engine().now();
    SendWr wr = make_send(s, p, /*from_client=*/true);
    wr.opcode = nic::Opcode::kRdmaWrite;
    wr.remote_addr = uptr(s.sink_s.data());
    wr.rkey = s.mr_sink_s->rkey;
    co_await maybe_syscall(ctx, p.knobs);
    int rc = co_await ctx.post_send(*s.qp_c, std::move(wr));
    if (rc != 0) throw std::runtime_error("client write failed");
    (void)co_await wait_cqe(ctx, *s.scq_c, p.knobs);
    co_await spin_on_byte(ctx, &s.sink_c[p.msg_size - 1], marker);
    const Time rtt = ctx.core().engine().now() - t0;
    if (i >= p.warmup) out.latency_us.add(sim::to_us(rtt) / 2.0);
  }
}

sim::Task<> read_lat_client(Setup& s, const Params& p, LatencyResult& out) {
  verbs::Context& ctx = *s.client;
  const int total = p.warmup + p.iterations;
  for (int i = 0; i < total; ++i) {
    const Time t0 = ctx.core().engine().now();
    SendWr wr;
    wr.opcode = nic::Opcode::kRdmaRead;
    wr.sge = {uptr(s.sink_c.data()), static_cast<std::uint32_t>(p.msg_size),
              s.mr_sink_c->lkey};
    wr.remote_addr = uptr(s.data_s.data());
    wr.rkey = s.mr_data_s->rkey;
    co_await maybe_syscall(ctx, p.knobs);
    int rc = co_await ctx.post_send(*s.qp_c, std::move(wr));
    if (rc != 0) throw std::runtime_error("client read failed");
    (void)co_await wait_cqe(ctx, *s.scq_c, p.knobs);
    const Time lat = ctx.core().engine().now() - t0;
    if (i >= p.warmup) out.latency_us.add(sim::to_us(lat));
  }
}

// ---------------------------------------------------------------------------
// Bandwidth tests
// ---------------------------------------------------------------------------

/// `client_done` (may be null) lets the UD server stop once the client has
/// finished: undelivered datagrams were legitimately dropped.
sim::Task<> send_bw_server(Setup& s, const Params& p, int total,
                           const bool* client_done) {
  verbs::Context& ctx = *s.server;
  int received = 0;
  std::uint32_t next_slot = 0;
  std::vector<Cqe> wc(64);
  while (received < total) {
    // UD servers (client_done set) must not block in the event path: the
    // tail of the stream may have been legitimately dropped.
    const bool can_sleep = p.knobs.interrupt_wait && client_done == nullptr;
    std::size_t n = can_sleep ? co_await event_harvest(ctx, *s.rcq_s, wc)
                              : co_await ctx.poll_cq(*s.rcq_s, wc);
    if (n == 0) {
      if (client_done != nullptr && *client_done) break;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (wc[j].status != nic::WcStatus::kSuccess) {
        throw std::runtime_error("server recv completion error");
      }
      ++received;
    }
    // Replenish the RQ with as many slots as we just consumed. With
    // batching on, refill in one kernel crossing instead of n.
    if (p.tx_batch > 1) {
      std::vector<RecvWr> refill(n);
      for (std::size_t j = 0; j < n; ++j) {
        refill[j] = {1, {uptr(sink_slot(s.sink_s, s.recv_len, next_slot)),
                         s.recv_len, s.mr_sink_s->lkey}};
        next_slot = (next_slot + 1) % s.slots;
      }
      int rc = co_await ctx.post_recv_burst(*s.qp_s, refill);
      if (rc != 0) throw std::runtime_error("server repost failed");
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        int rc = co_await ctx.post_recv(
            *s.qp_s, {1, {uptr(sink_slot(s.sink_s, s.recv_len, next_slot)),
                          s.recv_len, s.mr_sink_s->lkey}});
        if (rc != 0) throw std::runtime_error("server repost failed");
        next_slot = (next_slot + 1) % s.slots;
      }
    }
  }
}

sim::Task<> bw_client(Setup& s, const Params& p, BandwidthResult& out) {
  verbs::Context& ctx = *s.client;
  const int total = p.iterations;
  int posted = 0, completed = 0;
  std::vector<Cqe> wc(64);
  const Time t0 = ctx.core().engine().now();
  const Time deadline = t0 + sim::sec(120);
  while (completed < total) {
    while (posted < total &&
           posted - completed < static_cast<int>(p.tx_depth)) {
      SendWr wr = make_send(s, p, /*from_client=*/true);
      if (p.op == TestOp::kWrite) {
        wr.opcode = nic::Opcode::kRdmaWrite;
        wr.remote_addr = uptr(s.sink_s.data());
        wr.rkey = s.mr_sink_s->rkey;
      } else if (p.op == TestOp::kRead) {
        wr.opcode = nic::Opcode::kRdmaRead;
        wr.sge = {uptr(s.sink_c.data()), static_cast<std::uint32_t>(p.msg_size),
                  s.mr_sink_c->lkey};
        wr.remote_addr = uptr(s.data_s.data());
        wr.rkey = s.mr_data_s->rkey;
      }
      co_await maybe_syscall(ctx, p.knobs);
      co_await maybe_copy(ctx, p.knobs, p.msg_size);
      int rc = co_await ctx.post_send(*s.qp_c, std::move(wr));
      if (rc != 0) throw std::runtime_error("bw post_send failed");
      ++posted;
    }
    std::size_t n = p.knobs.interrupt_wait
                        ? co_await event_harvest(ctx, *s.scq_c, wc)
                        : co_await ctx.poll_cq(*s.scq_c, wc);
    for (std::size_t j = 0; j < n; ++j) {
      if (wc[j].status != nic::WcStatus::kSuccess) {
        throw std::runtime_error("bw completion error");
      }
    }
    completed += static_cast<int>(n);
    if (ctx.core().engine().now() > deadline) {
      throw std::runtime_error("bandwidth test timed out");
    }
  }
  out.elapsed = ctx.core().engine().now() - t0;
  out.messages = static_cast<std::uint64_t>(total);
  const double sec = sim::to_sec(out.elapsed);
  out.gbps = static_cast<double>(out.messages) * static_cast<double>(p.msg_size) *
             8.0 / sec / 1e9;
  out.mmsg_per_sec = static_cast<double>(out.messages) / sec / 1e6;
}

void validate(const Params& p) {
  if (p.msg_size == 0) throw std::invalid_argument("msg_size must be > 0");
  if (p.shards == 0) throw std::invalid_argument("shards must be >= 1");
  if (p.racks > 0 && p.hosts_per_rack == 0) {
    throw std::invalid_argument("hosts_per_rack must be >= 1");
  }
  if (p.transport == Transport::kUD && p.op != TestOp::kSend) {
    throw std::invalid_argument("UD supports only send/recv");
  }
  if (p.transport == Transport::kUD && p.msg_size > 4096) {
    throw std::invalid_argument("UD messages are limited to the MTU");
  }
}

std::size_t topo_hosts(const Params& p) {
  return p.racks == 0 ? 2 : p.racks * p.hosts_per_rack;
}

/// The SystemConfig for the requested topology: unchanged for the classic
/// two-host wire; a leaf-spine rack fabric whose access links inherit the
/// config's wire bandwidth/propagation when Params::racks >= 1.
core::SystemConfig topo_config(core::SystemConfig cfg, const Params& p) {
  cfg.event_queue = p.queue;
  cfg.sync = p.sync;
  cfg.speculation_depth = p.speculation_depth;
  cfg.conn_mode = p.conn_mode;
  cfg.shared_qp_pool = p.shared_qp_pool;
  if (p.racks > 0) {
    cfg.wiring = core::SystemConfig::Wiring::kRack;
    cfg.rack.racks = p.racks;
    cfg.rack.hosts_per_rack = p.hosts_per_rack;
    cfg.rack.host_bandwidth = cfg.wire_bandwidth;
    cfg.rack.host_propagation = cfg.wire_propagation;
  }
  return cfg;
}

void arm_tracing(core::System& sys, const Params& p) {
  if (!p.capture_trace) return;
  for (std::size_t i = 0; i < sys.shard_count(); ++i) {
    sys.tracer(i).set_capacity(p.trace_capacity);
  }
  sys.set_tracing(true);
}

}  // namespace

LatencyResult run_latency(const core::SystemConfig& cfg, const Params& p) {
  validate(p);
  core::System sys(topo_config(cfg, p), topo_hosts(p), p.shards);
  LatencyResult result;
  // Lives outside the workload coroutine: straggler NIC events (in-flight
  // deliveries past the last harvested completion) still reference these
  // buffers while run() drains the queue after the workload frame is gone.
  Setup s;
  const int total = p.warmup + p.iterations;
  arm_tracing(sys, p);
  if (p.shards <= 1) {
    sys.engine().spawn([](Setup& s, core::System& sys, const Params& p,
                          LatencyResult& result) -> sim::Task<> {
      co_await establish(s, sys, p, /*slots=*/1);
      const int total = p.warmup + p.iterations;
      switch (p.op) {
        case TestOp::kSend: {
          // Server's first receive must be posted before the first ping.
          int rc = co_await s.server->post_recv(
              *s.qp_s, {1, {uptr(s.sink_s.data()), s.recv_len, s.mr_sink_s->lkey}});
          if (rc != 0) throw std::runtime_error("initial post_recv failed");
          sim::Joinable srv(sys.engine(), send_lat_server(s, p, total));
          co_await send_lat_client(s, p, result);
          co_await srv.join();
          break;
        }
        case TestOp::kWrite: {
          sim::Joinable srv(sys.engine(), write_lat_server(s, p, total));
          co_await write_lat_client(s, p, result);
          co_await srv.join();
          break;
        }
        case TestOp::kRead: {
          co_await read_lat_client(s, p, result);
          break;
        }
      }
    }(s, sys, p, result));
    sys.engine().run();
  } else {
    // Phase 1 — setup. Connection establishment hops between both hosts'
    // engines, which the conservative protocol does not allow; the merged
    // sequential mode interleaves the engines under one global clock.
    bool setup_done = false;
    sys.engine().spawn([](Setup& s, core::System& sys, const Params& p,
                          bool& done) -> sim::Task<> {
      co_await establish(s, sys, p, /*slots=*/1);
      if (p.op == TestOp::kSend) {
        int rc = co_await s.server->post_recv(
            *s.qp_s, {1, {uptr(s.sink_s.data()), s.recv_len, s.mr_sink_s->lkey}});
        if (rc != 0) throw std::runtime_error("initial post_recv failed");
      }
      done = true;
    }(s, sys, p, setup_done));
    sys.sharded().run_sequential();
    if (!setup_done) throw std::runtime_error("sharded setup did not finish");
    sys.sharded().sync_clocks();
    // Phase 2 — the workload proper, one root per side, each pinned to its
    // host's shard. The roots only touch their own host's state; all
    // interaction flows through the NIC model's cross-shard messages.
    switch (p.op) {
      case TestOp::kSend:
        sys.engine_for(s.server_node).spawn(send_lat_server(s, p, total));
        sys.engine_for(0).spawn(send_lat_client(s, p, result));
        break;
      case TestOp::kWrite:
        sys.engine_for(s.server_node).spawn(write_lat_server(s, p, total));
        sys.engine_for(0).spawn(write_lat_client(s, p, result));
        break;
      case TestOp::kRead:
        sys.engine_for(0).spawn(read_lat_client(s, p, result));
        break;
    }
    sys.sharded().run();
  }
  result.avg_us = result.latency_us.mean();
  result.p50_us = result.latency_us.percentile(50);
  result.p99_us = result.latency_us.percentile(99);
  if (p.capture_trace) {
    result.trace = sys.merged_trace();
    result.trace_dropped = sys.trace_dropped();
  }
  result.clamped_events = sys.sharded().clamped_events();
  result.shard_windows = sys.sharded().stats().windows;
  result.shard_messages = sys.sharded().stats().messages;
  result.shard_rollbacks = sys.sharded().stats().rollbacks;
  result.shard_journaled = sys.sharded().stats().journaled_effects;
  if (result.latency_us.count() == 0) {
    throw std::runtime_error("latency test produced no samples");
  }
  return result;
}

BandwidthResult run_bandwidth(const core::SystemConfig& cfg, const Params& p) {
  validate(p);
  core::System sys(topo_config(cfg, p), topo_hosts(p), p.shards);
  BandwidthResult result;
  // Outlives the coroutine frame; see run_latency.
  Setup s;
  // Deep RQ for small messages; for large ones cap the sink region at
  // 256 MiB — the wire serializes large messages so far apart that a
  // shallow RQ never underruns (reposting is ns, wire gaps are us).
  const std::uint64_t by_mem =
      std::max<std::uint64_t>(8, (256ull << 20) / std::max<std::size_t>(p.msg_size, 1));
  const auto slots = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::max<std::uint32_t>(2 * p.tx_depth, 512), by_mem));
  arm_tracing(sys, p);
  if (p.shards <= 1) {
    sys.engine().spawn([](Setup& s, core::System& sys, const Params& p,
                          std::uint32_t slots, BandwidthResult& result) -> sim::Task<> {
      co_await establish(s, sys, p, slots);
      if (p.op == TestOp::kSend) {
        // Pre-fill the server RQ.
        for (std::uint32_t i = 0; i < slots; ++i) {
          int rc = co_await s.server->post_recv(
              *s.qp_s, {1, {uptr(sink_slot(s.sink_s, s.recv_len, i)), s.recv_len,
                            s.mr_sink_s->lkey}});
          if (rc != 0) throw std::runtime_error("prefill post_recv failed");
        }
        bool client_done = false;
        sim::Joinable srv(sys.engine(),
                          send_bw_server(s, p, p.iterations,
                                         s.is_ud ? &client_done : nullptr));
        co_await bw_client(s, p, result);
        client_done = true;
        co_await srv.join();
        // Integrity: the last delivered slot must carry the pattern.
        if (s.sink_s[s.is_ud ? nic::kGrhBytes : 0] != kPattern) {
          throw std::runtime_error("payload integrity check failed");
        }
      } else {
        co_await bw_client(s, p, result);
        std::vector<std::byte>& landing =
            p.op == TestOp::kWrite ? s.sink_s : s.sink_c;
        if (landing[0] != kPattern) {
          throw std::runtime_error("payload integrity check failed");
        }
      }
    }(s, sys, p, slots, result));
    sys.engine().run();
  } else {
    // Phase 1 — setup + RQ prefill in merged sequential mode.
    bool setup_done = false;
    sys.engine().spawn([](Setup& s, core::System& sys, const Params& p,
                          std::uint32_t slots, bool& done) -> sim::Task<> {
      co_await establish(s, sys, p, slots);
      if (p.op == TestOp::kSend) {
        for (std::uint32_t i = 0; i < slots; ++i) {
          int rc = co_await s.server->post_recv(
              *s.qp_s, {1, {uptr(sink_slot(s.sink_s, s.recv_len, i)), s.recv_len,
                            s.mr_sink_s->lkey}});
          if (rc != 0) throw std::runtime_error("prefill post_recv failed");
        }
      }
      done = true;
    }(s, sys, p, slots, setup_done));
    sys.sharded().run_sequential();
    if (!setup_done) throw std::runtime_error("sharded setup did not finish");
    sys.sharded().sync_clocks();
    // Phase 2 — client root on host 0's shard, server root (send tests) on
    // host 1's. `client_done` is only ever touched by the server's shard:
    // the client announces completion with a cross-shard message honoring
    // the lookahead, so the flag flips at a deterministic virtual time.
    bool client_done = false;
    if (p.op == TestOp::kSend) {
      sys.engine_for(s.server_node)
          .spawn(send_bw_server(s, p, p.iterations,
                                s.is_ud ? &client_done : nullptr));
    }
    sys.engine_for(0).spawn([](Setup& s, core::System& sys, const Params& p,
                               BandwidthResult& result,
                               bool& client_done) -> sim::Task<> {
      co_await bw_client(s, p, result);
      if (p.op == TestOp::kSend && s.is_ud) {
        sim::Engine& ce = sys.engine_for(0);
        // Pair-exact lookahead: the minimum delay the protocol allows for
        // a message from the client's shard to the server's.
        const std::uint32_t cs = sys.shard_of(0);
        const std::uint32_t ss = sys.shard_of(s.server_node);
        const sim::Time la = cs == ss ? 0 : sys.sharded().lookahead(cs, ss);
        ce.cross_post(sys.engine_for(s.server_node), ce.now() + la,
                      sim::InlineFn([&client_done] { client_done = true; }));
      }
    }(s, sys, p, result, client_done));
    sys.sharded().run();
    // Integrity checks (same assertions as the single-engine path).
    if (p.op == TestOp::kSend) {
      if (s.sink_s[s.is_ud ? nic::kGrhBytes : 0] != kPattern) {
        throw std::runtime_error("payload integrity check failed");
      }
    } else {
      std::vector<std::byte>& landing =
          p.op == TestOp::kWrite ? s.sink_s : s.sink_c;
      if (landing[0] != kPattern) {
        throw std::runtime_error("payload integrity check failed");
      }
    }
  }
  if (p.capture_trace) {
    result.trace = sys.merged_trace();
    result.trace_dropped = sys.trace_dropped();
  }
  result.clamped_events = sys.sharded().clamped_events();
  result.shard_windows = sys.sharded().stats().windows;
  result.shard_messages = sys.sharded().stats().messages;
  result.shard_rollbacks = sys.sharded().stats().rollbacks;
  result.shard_journaled = sys.sharded().stats().journaled_effects;
  if (result.messages == 0) {
    throw std::runtime_error("bandwidth test produced no result");
  }
  return result;
}

}  // namespace cord::perftest
