// Reproduction of the perftest 4.5 microbenchmarks used in the paper's
// evaluation: ping-pong latency tests (send_lat / write_lat / read_lat)
// and windowed bandwidth tests (send_bw / write_bw / read_bw) over RC and
// UD transports.
//
// The `Knobs` structure implements §2's "technique removal" experiment:
//   extra_copy     — "remove zero-copy":   an extra memcpy on each side;
//   extra_syscall  — "remove kernel-bypass": a getppid-like syscall per
//                    posted message;
//   interrupt_wait — "remove polling":     completions via armed-CQ
//                    interrupts instead of busy polling.
//
// All tests run on a freshly assembled core::System per invocation, so
// sweep points are independent and deterministic.
#pragma once

#include "core/system.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace cord::perftest {

enum class TestOp { kSend, kWrite, kRead };
enum class Transport { kRC, kUD };

struct Knobs {
  bool extra_copy = false;
  bool extra_syscall = false;
  bool interrupt_wait = false;
};

struct Params {
  TestOp op = TestOp::kSend;
  Transport transport = Transport::kRC;
  std::size_t msg_size = 4096;
  int iterations = 600;
  int warmup = 60;
  /// Send-window depth for bandwidth tests (perftest --tx-depth).
  std::uint32_t tx_depth = 128;
  /// Use inline sends when the message fits (perftest does by default).
  bool allow_inline = true;
  /// CoRD submission-ring depth (perftest --tx-batch): back-to-back posts
  /// gathered per QP before one batched kernel crossing flushes them.
  /// 1 (the default) is the classic one-syscall-per-op path. Applied to
  /// both sides' contexts when > 1; ignored in bypass mode. See
  /// verbs::ContextOptions::tx_batch.
  std::uint32_t tx_batch = 1;
  verbs::ContextOptions client{};
  verbs::ContextOptions server{};
  Knobs knobs{};
  /// Simulation shards (engine threads). 1 = the classic single-engine
  /// run; N > 1 partitions client and server across engines synchronized
  /// with conservative time windows (core::System sharding). Results are
  /// identical — the sharded run is checked against the single-engine
  /// goldens in the test suite.
  std::size_t shards = 1;
  /// Rack topology: 0 racks = the classic two-host back-to-back wire.
  /// With racks >= 1 the System is wired as a leaf-spine fabric
  /// (SystemConfig::Wiring::kRack) over racks * hosts_per_rack hosts; the
  /// client runs on host 0, the server on the last host (the far corner
  /// of the topology), and the access-link bandwidth/propagation follow
  /// the SystemConfig's wire parameters. With shards > 1 the default
  /// block placement must be rack-aligned (shards must divide racks).
  std::size_t racks = 0;
  std::size_t hosts_per_rack = 2;
  /// Event-queue backend (the queue=heap|calendar knob, forwarded to
  /// SystemConfig::event_queue). Results are bit-identical either way —
  /// asserted against the heap goldens in the test suite.
  sim::QueueKind queue = sim::QueueKind::kHeap;
  /// Shard synchronization (the sync=conservative|speculative knob,
  /// forwarded to SystemConfig::sync). Results are bit-identical either
  /// way — asserted against the single-engine goldens in the test suite.
  sim::SyncMode sync = sim::SyncMode::kConservative;
  /// Speculation throttle (windows past the conservative edge, >= 1;
  /// forwarded to SystemConfig::speculation_depth).
  std::uint32_t speculation_depth = sim::ShardedEngine::kDefaultSpeculationDepth;
  /// Connection-endpoint mode (the conn=exclusive|shared knob, forwarded
  /// to SystemConfig::conn_mode; see os/conn.hpp). Only the tenancy
  /// scenarios (perftest/tenancy.hpp) multiplex connections — the classic
  /// ping-pong/bandwidth tests use a single QP either way.
  os::ConnMode conn_mode = os::ConnMode::kExclusive;
  std::uint32_t shared_qp_pool = 64;
  /// Arm the system tracer for the run and return the captured records in
  /// the result (off by default: tracing must never tax a benchmark run).
  bool capture_trace = false;
  /// Record-buffer bound when capturing (drops are counted, not fatal).
  std::size_t trace_capacity = trace::Tracer::kDefaultCapacity;
};

struct LatencyResult {
  /// Per-iteration latency in microseconds. Convention follows perftest:
  /// RTT/2 for send and write ping-pongs, full completion time for reads.
  sim::Samples latency_us;
  double avg_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Captured trace (empty unless Params::capture_trace).
  std::vector<trace::Record> trace;
  std::uint64_t trace_dropped = 0;
  /// Engine clamp count for the run — nonzero means the run was truncated
  /// and its numbers are suspect (surface it, don't bury it).
  std::uint64_t clamped_events = 0;
  /// Sharded-run sync statistics (zero for single-engine runs; the
  /// speculation counters additionally need sync = kSpeculative).
  std::uint64_t shard_windows = 0;
  std::uint64_t shard_messages = 0;
  std::uint64_t shard_rollbacks = 0;
  std::uint64_t shard_journaled = 0;
};

struct BandwidthResult {
  double gbps = 0.0;
  double mmsg_per_sec = 0.0;
  std::uint64_t messages = 0;
  sim::Time elapsed = 0;
  /// Captured trace (empty unless Params::capture_trace).
  std::vector<trace::Record> trace;
  std::uint64_t trace_dropped = 0;
  std::uint64_t clamped_events = 0;
  /// Sharded-run sync statistics (zero for single-engine runs; the
  /// speculation counters additionally need sync = kSpeculative).
  std::uint64_t shard_windows = 0;
  std::uint64_t shard_messages = 0;
  std::uint64_t shard_rollbacks = 0;
  std::uint64_t shard_journaled = 0;
};

/// Run a ping-pong latency test on a fresh instance of `cfg`.
LatencyResult run_latency(const core::SystemConfig& cfg, const Params& p);

/// Run a windowed bandwidth test on a fresh instance of `cfg`.
BandwidthResult run_bandwidth(const core::SystemConfig& cfg, const Params& p);

}  // namespace cord::perftest
