#include "perftest/tenancy.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "os/policies.hpp"
#include "verbs/verbs.hpp"

namespace cord::perftest {
namespace {

using nic::Cqe;
using nic::SendWr;
using sim::Time;

std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

verbs::DataplaneMode mode_of(bool cord) {
  return cord ? verbs::DataplaneMode::kCord : verbs::DataplaneMode::kBypass;
}

/// A connected RC QP pair, wired with direct NIC state transitions like
/// ConnectionService::wire (out-of-band control plane: establishment cost
/// is out of scope for these steady-state scenarios).
nic::QueuePair* link(os::Host& a, os::Host& b, nic::QpConfig qca,
                     nic::QpConfig qcb) {
  nic::QueuePair* qa = a.nic().create_qp(qca);
  nic::QueuePair* qb = b.nic().create_qp(qcb);
  a.nic().modify_qp(*qa, nic::QpState::kInit);
  b.nic().modify_qp(*qb, nic::QpState::kInit);
  a.nic().modify_qp(*qa, nic::QpState::kRtr, {b.node(), qb->qpn()});
  b.nic().modify_qp(*qb, nic::QpState::kRtr, {a.node(), qa->qpn()});
  a.nic().modify_qp(*qa, nic::QpState::kRts);
  b.nic().modify_qp(*qb, nic::QpState::kRts);
  return qa;
}

Cqe check(Cqe wc, const char* who) {
  if (wc.status != nic::WcStatus::kSuccess) {
    throw std::runtime_error(std::string(who) + " completion error: " +
                             std::string(nic::to_string(wc.status)));
  }
  return wc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection scaling
// ---------------------------------------------------------------------------

ScaleResult run_conn_scale(const core::SystemConfig& base,
                           const ScaleParams& p) {
  if (p.connections == 0 || p.ops == 0) {
    throw std::invalid_argument("scale test needs connections and ops");
  }
  if (p.window == 0 || p.window > p.connections) {
    throw std::invalid_argument("window must be in [1, connections]");
  }
  core::SystemConfig cfg = base;
  cfg.event_queue = p.queue;
  cfg.sync = p.sync;
  cfg.conn_mode = p.conn_mode;
  cfg.shared_qp_pool = p.shared_qp_pool;
  cfg.nic.icm_qp_capacity = p.icm_qp_capacity;
  cfg.nic.icm_mr_capacity = p.icm_mr_capacity;
  core::System sys(cfg, /*host_count=*/2, p.shards);

  os::ConnectionService cli(sys.host(0), p.conn_mode, p.shared_qp_pool);
  os::ConnectionService srv(sys.host(1), p.conn_mode, p.shared_qp_pool);
  os::ConnectionService::wire(cli, srv, p.connections);

  // One source MR per physical QP client-side: in exclusive mode the WQE
  // fetch then touches as many MR contexts as there are connections (the
  // MR side of the context working set); shared mode touches only the
  // bounded pool's worth. One remote-writable sink server-side.
  std::vector<std::byte> src(p.msg_size, std::byte{0xA5});
  std::vector<std::byte> sink(p.msg_size, std::byte{0});
  std::vector<const nic::MemoryRegion*> mrs;
  mrs.reserve(cli.physical_count());
  for (std::size_t i = 0; i < cli.physical_count(); ++i) {
    mrs.push_back(
        &sys.host(0).nic().register_mr(cli.pd(), src.data(), src.size(), 0));
  }
  const nic::MemoryRegion& sink_mr = sys.host(1).nic().register_mr(
      srv.pd(), sink.data(), sink.size(),
      nic::kAccessLocalWrite | nic::kAccessRemoteWrite);

  ScaleResult result;
  result.latency_us.reserve(p.ops);
  sys.engine_for(0).spawn(
      [](core::System& sys, os::ConnectionService& cli,
         std::vector<const nic::MemoryRegion*>& mrs,
         const nic::MemoryRegion& sink_mr, std::uintptr_t src_addr,
         std::uintptr_t sink_addr, const ScaleParams& p,
         ScaleResult& result) -> sim::Task<> {
        verbs::Context ctx(sys.host(0), 0,
                           sys.options(mode_of(p.cord), /*tenant=*/1));
        sim::Engine& eng = sys.engine_for(0);
        std::vector<Time> post_t(p.ops, 0);
        std::size_t posted = 0, done = 0;
        std::uint32_t outstanding = 0;
        while (done < p.ops) {
          while (outstanding < p.window && posted < p.ops) {
            const auto c = static_cast<os::ConnectionService::ConnId>(
                posted % p.connections);
            nic::QueuePair& qp = cli.physical(c);
            SendWr wr;
            wr.wr_id = posted;
            wr.opcode = nic::Opcode::kRdmaWrite;
            wr.sge = {src_addr, static_cast<std::uint32_t>(p.msg_size),
                      mrs[cli.conn(c).phys]->lkey};
            wr.remote_addr = sink_addr;
            wr.rkey = sink_mr.rkey;
            post_t[posted] = eng.now();
            const int rc = co_await ctx.post_send(qp, std::move(wr));
            if (rc != 0) throw std::runtime_error("scale post_send failed");
            ++posted;
            ++outstanding;
          }
          const Cqe wc = check(co_await ctx.wait_one(cli.cq()), "scale");
          result.latency_us.add(sim::to_us(eng.now() - post_t[wc.wr_id]));
          ++done;
          --outstanding;
        }
      }(sys, cli, mrs, sink_mr, uptr(src.data()), uptr(sink.data()), p,
        result));
  sys.sharded().run();

  result.avg_us = result.latency_us.mean();
  result.p50_us = result.latency_us.percentile(50);
  result.p99_us = result.latency_us.percentile(99);
  const nic::IcmCache::Stats qs = sys.host(0).nic().icm_qp_cache().stats();
  const nic::IcmCache::Stats ms = sys.host(0).nic().icm_mr_cache().stats();
  result.icm_qp_hits = qs.hits;
  result.icm_qp_misses = qs.misses;
  result.icm_qp_evictions = qs.evictions;
  result.icm_mr_hits = ms.hits;
  result.icm_mr_misses = ms.misses;
  result.icm_mr_evictions = ms.evictions;
  result.physical_qps = cli.physical_count();
  result.conn_table_bytes = cli.conn_table_bytes();
  result.clamped_events = sys.sharded().clamped_events();
  if (result.latency_us.count() == 0) {
    throw std::runtime_error("scale test produced no samples");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Noisy neighbor
// ---------------------------------------------------------------------------

namespace {

/// Victim v: small signaled writes to the quiet host, paced by a gap, each
/// ping's post-to-completion time recorded. Runs on its own core with its
/// own QP + CQ; the only thing it shares with the attacker is the NIC.
sim::Task<> victim_loop(core::System& sys, const NoisyParams& p,
                        std::size_t core_idx, os::TenantId tenant,
                        nic::QueuePair& qp, nic::CompletionQueue& cq,
                        std::uint32_t lkey, std::uintptr_t src,
                        std::uintptr_t dst, std::uint32_t rkey,
                        sim::Samples& out) {
  verbs::Context ctx(sys.host(0), core_idx, sys.options(mode_of(p.cord), tenant));
  sim::Engine& eng = sys.engine_for(0);
  for (std::size_t i = 0; i < p.victim_pings; ++i) {
    const Time t0 = eng.now();
    SendWr wr;
    wr.wr_id = i;
    wr.opcode = nic::Opcode::kRdmaWrite;
    wr.sge = {src, static_cast<std::uint32_t>(p.msg_size), lkey};
    wr.remote_addr = dst;
    wr.rkey = rkey;
    const int rc = co_await ctx.post_send(qp, std::move(wr));
    if (rc != 0) throw std::runtime_error("victim post_send failed");
    (void)check(co_await ctx.wait_one(cq), "victim");
    out.add(sim::to_us(eng.now() - t0));
    co_await eng.delay(p.victim_gap);
  }
}

/// The attacker's data-plane flood: a deep window of signaled writes
/// round-robin over more QPs than the ICM cache holds, so every doorbell
/// misses and evicts victim contexts. Policy denials (-EAGAIN) are
/// counted and backed off; QoS shaping stalls the posting core.
sim::Task<> attacker_loop(core::System& sys, const NoisyParams& p,
                          os::TenantId tenant,
                          std::vector<nic::QueuePair*>& qps,
                          nic::CompletionQueue& cq,
                          std::vector<const nic::MemoryRegion*>& mrs,
                          std::uintptr_t src, std::uintptr_t dst,
                          std::uint32_t rkey, NoisyResult& res) {
  verbs::Context ctx(sys.host(0), p.victims, sys.options(mode_of(p.cord), tenant));
  sim::Engine& eng = sys.engine_for(0);
  std::size_t next = 0;
  std::uint32_t outstanding = 0;
  std::uint64_t wr_id = 0;
  while (true) {
    while (eng.now() < p.duration && outstanding < p.attacker_window) {
      SendWr wr;
      wr.wr_id = wr_id++;
      wr.opcode = nic::Opcode::kRdmaWrite;
      wr.sge = {src, static_cast<std::uint32_t>(p.attacker_msg),
                mrs[next]->lkey};
      wr.remote_addr = dst;
      wr.rkey = rkey;
      nic::QueuePair& qp = *qps[next];
      next = (next + 1) % qps.size();
      const int rc = co_await ctx.post_send(qp, std::move(wr));
      if (rc == 0) {
        ++outstanding;
      } else {
        ++res.attacker_denied;
        co_await eng.delay(sim::ns(500));
      }
    }
    if (outstanding == 0) {
      if (eng.now() >= p.duration) break;
      co_await eng.delay(sim::ns(500));
      continue;
    }
    (void)check(co_await ctx.wait_one(cq), "attacker");
    ++res.attacker_ops;
    --outstanding;
  }
}

/// The attacker's control-plane churn: register/deregister in a tight
/// loop. Registration is kernel-mediated even in bypass mode, so the
/// RegistrationQuota bites here regardless of dataplane mode — the one
/// lever a bypass deployment retains.
sim::Task<> churn_loop(core::System& sys, const NoisyParams& p,
                       os::TenantId tenant, nic::ProtectionDomainId pd,
                       void* buf, NoisyResult& res) {
  verbs::Context ctx(sys.host(0), p.victims + 1,
                     sys.options(mode_of(p.cord), tenant));
  sim::Engine& eng = sys.engine_for(0);
  while (eng.now() < p.duration) {
    const nic::MemoryRegion* mr =
        co_await ctx.reg_mr(pd, buf, 4096, nic::kAccessLocalWrite);
    if (mr == nullptr) {
      ++res.attacker_reg_denied;
      co_await eng.delay(sim::us(2));
      continue;
    }
    ++res.attacker_regs;
    (void)co_await ctx.dereg_mr(mr->lkey);
  }
}

}  // namespace

NoisyResult run_noisy_neighbor(const core::SystemConfig& base,
                               const NoisyParams& p) {
  if (p.victims == 0 || p.attacker_qps == 0) {
    throw std::invalid_argument("noisy-neighbor needs victims and attacker QPs");
  }
  core::SystemConfig cfg = base;
  cfg.event_queue = p.queue;
  cfg.sync = p.sync;
  cfg.nic.icm_qp_capacity = p.icm_qp_capacity;
  cfg.nic.icm_mr_capacity = p.icm_mr_capacity;
  // Host 0 runs every tenant; host 1 is the victims' quiet peer; host 2 is
  // the attacker's flood sink; host 3 keeps the host count divisible for
  // 1/2/4-shard block placements.
  core::System sys(cfg, /*host_count=*/4, p.shards);
  os::Host& h0 = sys.host(0);
  os::Host& h1 = sys.host(1);
  os::Host& h2 = sys.host(2);

  const os::TenantId attacker = static_cast<os::TenantId>(p.victims + 1);
  NoisyResult res;

  if (p.policies) {
    os::PolicyChain& chain = h0.kernel().policies();
    trace::MetricsRegistry& reg = h0.kernel().metrics();
    // Bandwidth shaping: line rate by default, the attacker squeezed.
    auto& qos = static_cast<os::QosTokenBucket&>(
        chain.install(std::make_unique<os::QosTokenBucket>(
            12.5e9, std::uint64_t{1} << 20, os::QosTokenBucket::Mode::kShape)));
    qos.set_tenant_rate(attacker, p.attacker_bytes_per_sec);
    // Op-rate fairness over the doorbell/poll flood vectors: generous
    // default (victims busy-poll their completions), attacker capped.
    auto& oprate = static_cast<os::OpRateQuota&>(
        chain.install(std::make_unique<os::OpRateQuota>(
            5e6, 64,
            os::OpRateQuota::kind_bit(os::DataplaneOp::Kind::kPostSend) |
                os::OpRateQuota::kind_bit(os::DataplaneOp::Kind::kPollCq),
            reg)));
    oprate.set_tenant_rate(attacker, p.attacker_ops_per_sec);
    // Registration churn: few live MRs, slow refill.
    chain.install(std::make_unique<os::RegistrationQuota>(
        p.max_live_mrs, p.regs_per_sec, /*burst_regs=*/4, reg));
    // Reachability: victims may touch host 1, the attacker host 2.
    auto& acl = static_cast<os::SecurityAcl&>(
        chain.install(std::make_unique<os::SecurityAcl>()));
    for (std::size_t v = 0; v < p.victims; ++v) {
      acl.register_tenant(static_cast<os::TenantId>(1 + v));
      acl.allow(static_cast<os::TenantId>(1 + v), h1.node());
    }
    acl.register_tenant(attacker);
    acl.allow(attacker, h2.node());
  }

  // --- Out-of-band setup (direct NIC state, no simulated cost) ---------
  const nic::ProtectionDomainId pd0 = h0.nic().alloc_pd();
  const nic::ProtectionDomainId pd1 = h1.nic().alloc_pd();
  const nic::ProtectionDomainId pd2 = h2.nic().alloc_pd();
  nic::CompletionQueue* cq1 = h1.nic().create_cq(64);
  nic::CompletionQueue* cq2 = h2.nic().create_cq(64);

  // Victims: one QP + CQ each to host 1, one shared source MR (a single
  // hot MR context — exactly what the attacker's thrash evicts).
  std::vector<std::byte> vsrc(p.msg_size, std::byte{0x5A});
  std::vector<std::byte> vsink(p.msg_size * p.victims, std::byte{0});
  const nic::MemoryRegion& vsrc_mr =
      h0.nic().register_mr(pd0, vsrc.data(), vsrc.size(), 0);
  const nic::MemoryRegion& vsink_mr = h1.nic().register_mr(
      pd1, vsink.data(), vsink.size(),
      nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
  std::vector<nic::QueuePair*> vqps;
  std::vector<nic::CompletionQueue*> vcqs;
  for (std::size_t v = 0; v < p.victims; ++v) {
    nic::CompletionQueue* cq = h0.nic().create_cq(64);
    vcqs.push_back(cq);
    vqps.push_back(link(h0, h1,
                        {nic::QpType::kRC, pd0, cq, cq, 64, 64, 0, nullptr},
                        {nic::QpType::kRC, pd1, cq1, cq1, 64, 64, 0, nullptr}));
  }

  // Attacker: many QPs to host 2 (more than the ICM QP cache holds), one
  // MR per QP (more than the MR cache holds), one shared CQ.
  std::vector<std::byte> asrc(p.attacker_msg, std::byte{0xEE});
  std::vector<std::byte> asink(p.attacker_msg, std::byte{0});
  const nic::MemoryRegion& asink_mr = h2.nic().register_mr(
      pd2, asink.data(), asink.size(),
      nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
  nic::CompletionQueue* acq = h0.nic().create_cq(4096);
  std::vector<nic::QueuePair*> aqps;
  std::vector<const nic::MemoryRegion*> amrs;
  for (std::size_t i = 0; i < p.attacker_qps; ++i) {
    aqps.push_back(link(h0, h2,
                        {nic::QpType::kRC, pd0, acq, acq, 16, 16, 0, nullptr},
                        {nic::QpType::kRC, pd2, cq2, cq2, 16, 16, 0, nullptr}));
    amrs.push_back(
        &h0.nic().register_mr(pd0, asrc.data(), asrc.size(), 0));
  }
  std::vector<std::byte> churn_buf(4096, std::byte{0});

  // --- Run: every root on host 0's shard ------------------------------
  std::vector<sim::Samples> per_victim(p.victims);
  sim::Engine& eng = sys.engine_for(0);
  for (std::size_t v = 0; v < p.victims; ++v) {
    eng.spawn(victim_loop(sys, p, v, static_cast<os::TenantId>(1 + v),
                          *vqps[v], *vcqs[v], vsrc_mr.lkey, uptr(vsrc.data()),
                          uptr(vsink.data()) + v * p.msg_size, vsink_mr.rkey,
                          per_victim[v]));
  }
  eng.spawn(attacker_loop(sys, p, attacker, aqps, *acq, amrs,
                          uptr(asrc.data()), uptr(asink.data()), asink_mr.rkey,
                          res));
  eng.spawn(churn_loop(sys, p, attacker, pd0, churn_buf.data(), res));
  sys.sharded().run();

  res.victim_us.reserve(p.victims * p.victim_pings);
  for (const sim::Samples& s : per_victim) {
    for (const double x : s.values()) res.victim_us.add(x);
  }
  res.victim_avg_us = res.victim_us.mean();
  res.victim_p50_us = res.victim_us.percentile(50);
  res.victim_p99_us = res.victim_us.percentile(99);
  const nic::IcmCache::Stats qs = h0.nic().icm_qp_cache().stats();
  res.icm_qp_misses = qs.misses;
  res.icm_qp_evictions = qs.evictions;
  res.clamped_events = sys.sharded().clamped_events();
  if (res.victim_us.count() == 0) {
    throw std::runtime_error("noisy-neighbor produced no victim samples");
  }
  return res;
}

}  // namespace cord::perftest
